//! End-to-end encoder serving throughput: pushes a mixed-length request
//! workload through `LutServer` at 1/2/4 pool threads, compares FIFO
//! against length-bucketed admission on the same workload, and records
//! real tokens/sec plus padding efficiency into the `serve` section of
//! `BENCH_lut_eval.json` — the ROADMAP's "end-to-end encoder tokens/sec"
//! and "reduce padding waste" trajectory items.
//!
//! The model uses RoBERTa-base *shapes* (hidden 768, 12 heads, FFN 3072)
//! with the layer count cut to 2 so a full sweep finishes in well under a
//! minute on a laptop core; tokens/sec scales ~1/layers, and the
//! serial-vs-pooled *ratio* (the number under test) does not depend on
//! depth. The recorded `machine_cores` field is the honest context for
//! that ratio: on a single-core container the pooled configurations time-
//! slice one CPU and the speedup sits near 1.0 by construction — the
//! determinism contract (pooled bits == serial bits) is what the tests
//! enforce there, and the >1.5x criterion is only observable on ≥2 cores.
//! The padding-efficiency comparison has no such caveat: padded area is a
//! pure function of admission order, identical on any machine.
//!
//! A third part exercises **sustained** serving through `AsyncLutServer`:
//! steady-state metrics memory (the RSS proxy a long-lived deployment
//! cares about), overload reject rate at a deliberately tight
//! backpressure watermark, and 1-vs-2 batches in flight. It lands in the
//! `serve.sustained` section of the ledger and is what `bench_check`
//! gates CI on.
//!
//! A fourth part exercises **replica-sharded** serving through
//! `ShardedServer`: a clean two-replica run measures join-shortest-queue
//! routing balance (min/max requests routed per replica) and fleet
//! tokens/sec, and a faulted run — replica 0's first batch panics, one
//! strike quarantines — measures the failover → probe → re-admission
//! recovery time. It lands in `serve.sharded` and is likewise gated by
//! `bench_check`.
//!
//! A fifth part measures the **cost of observability**: the sustained
//! workload with the flight recorder off vs on, in interleaved pairs,
//! reported as a median overhead percentage in `serve.trace_overhead` —
//! `bench_check` fails the build past 5%.
//!
//! A sixth part measures **autoregressive decoding** through the
//! continuous-batching plane: concurrent generations at growing KV-cache
//! contexts (the model is rebuilt with `max_seq` stretched to hold the
//! longest), reporting generated tokens/sec, decode-plane steps/sec,
//! mean decode batch width and inter-token latency p50/p95 per context,
//! plus a prefill:decode request-mix sweep — encode traffic and
//! generations sharing one queue — in `serve.decode`, gated by
//! `bench_check`.
//!
//! A seventh part measures **codebook serving**: centroid codebooks are
//! baked onto the bench model (calibrated on the serve workload), and the
//! same workload is served in `MatmulMode::Codebook` vs `F32` on one
//! thread — throughput ratio, end-to-end relative error of the served
//! hidden states, table memory and one-time bake cost land in
//! `serve.codebook`, gated by `bench_check`.
//!
//! Run: `cargo run --release -p nnlut-bench --bin bench_serve`
//! Smoke: `cargo run --release -p nnlut-bench --bin bench_serve -- --quick`
//! (tiny model, `BENCH_lut_eval.json` untouched — CI keeps the path alive
//! without overwriting real measurements). `--out <path>` additionally
//! writes the run's own section JSON to `path` (any mode) — CI's
//! bench-regression gate diffs a fresh `--quick --out` run against the
//! committed `BENCH_serve_quick.json` baseline via `bench_check`.

use std::sync::{Arc, Once};
use std::time::{Duration, Instant};

use nnlut_bench::upsert_json_key;
use nnlut_core::codebook::CodebookSpec;
use nnlut_core::train::TrainConfig;
use nnlut_core::NnLutKit;
use nnlut_serve::{
    AsyncLutServer, AsyncServerConfig, BatchPolicy, ClosePolicy, FaultPlan, LutServer,
    ReplicaHealth, ServeError, ServePolicy, ServerConfig, ShardConfig, ShardedServer, TraceConfig,
    INJECTED_PANIC_PREFIX,
};
use nnlut_transformer::Nonlinearity;
use nnlut_transformer::{BertModel, MatmulMode, TransformerConfig};

struct Config {
    label: &'static str,
    model: TransformerConfig,
    requests: usize,
    /// Request lengths cycle through this mix (mixed on purpose: the
    /// batcher's padding decisions are part of what is being timed).
    lengths: &'static [usize],
    threads: &'static [usize],
    policy: BatchPolicy,
    /// Length-bucket edges for the bucketed-admission comparison.
    bucket_edges: &'static [usize],
    /// Requests in the sustained async scenario (per in-flight setting).
    sustained_requests: usize,
    /// Queue-depth watermark of the sustained overload burst.
    overload_watermark: usize,
    /// KV-cache contexts (prompt lengths) of the decode sweep.
    decode_contexts: &'static [usize],
    /// Concurrent generations per decode-sweep leg.
    decode_streams: usize,
    /// Tokens generated per stream in the decode sweep.
    decode_max_new: usize,
    /// The prefill:decode mix sweep: `(encodes, generations)` per leg.
    decode_mixes: &'static [(usize, usize)],
    write_json: bool,
}

fn quick_config() -> Config {
    Config {
        label: "quick (roberta_tiny × 4 layers)",
        model: TransformerConfig::roberta_tiny(),
        requests: 16,
        lengths: &[5, 11, 17, 29, 41, 64],
        threads: &[1, 2],
        policy: BatchPolicy {
            max_batch: 8,
            max_padded_tokens: 512,
            bucket_edges: Vec::new(),
        },
        bucket_edges: &[8, 16, 32],
        sustained_requests: 24,
        overload_watermark: 4,
        decode_contexts: &[16, 32],
        decode_streams: 2,
        decode_max_new: 4,
        decode_mixes: &[(6, 2), (4, 4), (2, 6)],
        write_json: false,
    }
}

fn full_config() -> Config {
    // RoBERTa-base shapes, depth cut to 2 (see module docs) — shared
    // with bench_lut_eval's layer shapes via nnlut_bench so the `serve`
    // and `simd` ledger sections can't drift apart.
    Config {
        label: "roberta_base shapes × 2 layers",
        model: nnlut_bench::roberta_bench_config(),
        requests: 32,
        lengths: &[16, 32, 48, 64, 96, 128],
        threads: &[1, 2, 4],
        policy: BatchPolicy {
            max_batch: 8,
            max_padded_tokens: 1024,
            bucket_edges: Vec::new(),
        },
        bucket_edges: &[16, 32, 64],
        sustained_requests: 48,
        overload_watermark: 8,
        decode_contexts: &[64, 256, 1024],
        decode_streams: 2,
        decode_max_new: 8,
        decode_mixes: &[(12, 4), (8, 8), (4, 12)],
        write_json: true,
    }
}

fn workload(cfg: &Config) -> Vec<Vec<usize>> {
    (0..cfg.requests)
        .map(|r| {
            let len = cfg.lengths[r % cfg.lengths.len()];
            (0..len)
                .map(|i| (i * 31 + r * 7) % cfg.model.vocab)
                .collect()
        })
        .collect()
}

#[derive(Clone)]
struct Measurement {
    threads: usize,
    tokens_per_sec: f64,
    p50_ms: f64,
    p95_ms: f64,
    wall_s: f64,
}

fn run_once(
    cfg: &Config,
    model: &BertModel,
    kit: &NnLutKit,
    threads: usize,
    policy: BatchPolicy,
) -> (Measurement, f64) {
    let mut server = LutServer::new(
        model.clone(),
        kit.clone(),
        ServerConfig {
            threads,
            policy,
            mode: MatmulMode::F32,
            ..ServerConfig::default()
        },
    );
    let start = Instant::now();
    let responses = server.serve(workload(cfg));
    let wall = start.elapsed();
    assert_eq!(responses.len(), cfg.requests, "lost responses");
    let m = server.metrics();
    (
        Measurement {
            threads,
            tokens_per_sec: m.tokens_per_sec(),
            p50_ms: m.latency_percentile(50.0).unwrap_or_default().as_secs_f64() * 1e3,
            p95_ms: m.latency_percentile(95.0).unwrap_or_default().as_secs_f64() * 1e3,
            wall_s: wall.as_secs_f64(),
        },
        m.padding_efficiency(),
    )
}

struct SustainedRun {
    max_in_flight: usize,
    tokens_per_sec: f64,
    wall_s: f64,
    metrics_bytes: usize,
    sketch_capacity: usize,
}

/// Pushes the mixed-length workload through `AsyncLutServer` with
/// `max_in_flight` concurrent batches and reports end-to-end throughput
/// plus the steady-state metrics footprint (the RSS proxy).
fn run_sustained(
    cfg: &Config,
    model: &BertModel,
    kit: &NnLutKit,
    max_in_flight: usize,
) -> SustainedRun {
    let server = AsyncLutServer::new(
        model.clone(),
        kit.clone(),
        AsyncServerConfig {
            threads: 1,
            max_in_flight,
            policy: cfg.policy.clone().with_buckets(cfg.bucket_edges.to_vec()),
            close: ClosePolicy {
                max_batch_age: Duration::from_millis(2),
                deadline_slack: Duration::from_millis(1),
            },
            ..AsyncServerConfig::default()
        },
    );
    let requests: Vec<Vec<usize>> = (0..cfg.sustained_requests)
        .map(|r| {
            let len = cfg.lengths[r % cfg.lengths.len()];
            (0..len)
                .map(|i| (i * 31 + r * 7) % cfg.model.vocab)
                .collect()
        })
        .collect();
    let start = Instant::now();
    let tickets: Vec<_> = requests.into_iter().map(|t| server.submit(t)).collect();
    let mut tokens = 0usize;
    for t in tickets {
        tokens += t.wait().expect("no deadlines in play").tokens;
    }
    let wall = start.elapsed().as_secs_f64();
    let m = server.metrics();
    SustainedRun {
        max_in_flight,
        tokens_per_sec: tokens as f64 / wall,
        wall_s: wall,
        metrics_bytes: m.approx_bytes(),
        sketch_capacity: m.sketch_capacity(),
    }
}

struct TraceOverheadRun {
    runs: usize,
    tokens_per_sec_off: f64,
    tokens_per_sec_on: f64,
    overhead_pct: f64,
    recorder_capacity: usize,
    recorder_bytes: usize,
}

/// Part 5: the cost of observability. After one discarded warm-up, the
/// sustained workload runs with the flight recorder off and on in
/// interleaved pairs; the reported overhead compares the *medians* of
/// the two populations (robust to a single noisy run on a busy box),
/// clamped at zero — tracing cannot make encodes faster, a negative
/// delta is noise. `bench_check` gates this at ≤ 5%: the tracing layer
/// must stay passive in cost, not just in semantics.
fn run_trace_overhead(cfg: &Config, model: &BertModel, kit: &NnLutKit) -> TraceOverheadRun {
    let one = |trace: TraceConfig| -> (f64, usize, usize) {
        let server = AsyncLutServer::new(
            model.clone(),
            kit.clone(),
            AsyncServerConfig {
                threads: 1,
                max_in_flight: 2,
                policy: cfg.policy.clone().with_buckets(cfg.bucket_edges.to_vec()),
                close: ClosePolicy {
                    max_batch_age: Duration::from_millis(2),
                    deadline_slack: Duration::from_millis(1),
                },
                trace,
                ..AsyncServerConfig::default()
            },
        );
        let requests: Vec<Vec<usize>> = (0..cfg.sustained_requests)
            .map(|r| {
                let len = cfg.lengths[r % cfg.lengths.len()];
                (0..len)
                    .map(|i| (i * 31 + r * 7) % cfg.model.vocab)
                    .collect()
            })
            .collect();
        let start = Instant::now();
        let tickets: Vec<_> = requests.into_iter().map(|t| server.submit(t)).collect();
        let mut tokens = 0usize;
        for t in tickets {
            tokens += t.wait().expect("no deadlines in play").tokens;
        }
        let wall = start.elapsed().as_secs_f64();
        let (capacity, bytes) = server
            .recorder()
            .map_or((0, 0), |r| (r.capacity(), r.approx_bytes()));
        (tokens as f64 / wall, capacity, bytes)
    };

    let runs = 3usize;
    let mut offs = Vec::with_capacity(runs);
    let mut ons = Vec::with_capacity(runs);
    let mut capacity = 0usize;
    let mut bytes = 0usize;
    one(TraceConfig::disabled()); // warm-up: page in the model, discard
    for _ in 0..runs {
        let (off, _, _) = one(TraceConfig::disabled());
        let (on, cap, b) = one(TraceConfig::enabled());
        offs.push(off);
        ons.push(on);
        capacity = cap;
        bytes = b;
    }
    let median = |xs: &mut Vec<f64>| -> f64 {
        xs.sort_by(f64::total_cmp);
        xs[xs.len() / 2]
    };
    let off = median(&mut offs);
    let on = median(&mut ons);
    TraceOverheadRun {
        runs,
        tokens_per_sec_off: off,
        tokens_per_sec_on: on,
        overhead_pct: ((1.0 - on / off) * 100.0).max(0.0),
        recorder_capacity: capacity,
        recorder_bytes: bytes,
    }
}

struct OverloadRun {
    watermark: usize,
    submitted: usize,
    rejected: usize,
    served_ok: usize,
    recovered: bool,
}

/// Slams a tight queue-depth watermark with an un-paced burst, counts
/// reject-at-door outcomes, then verifies the door reopens once the
/// burst drains.
fn run_overload(cfg: &Config, model: &BertModel, kit: &NnLutKit) -> OverloadRun {
    let server = AsyncLutServer::new(
        model.clone(),
        kit.clone(),
        AsyncServerConfig {
            threads: 1,
            policy: cfg.policy.clone().with_buckets(cfg.bucket_edges.to_vec()),
            admission: ServePolicy::with_max_queue_depth(cfg.overload_watermark),
            close: ClosePolicy {
                max_batch_age: Duration::from_millis(2),
                deadline_slack: Duration::from_millis(1),
            },
            ..AsyncServerConfig::default()
        },
    );
    let submitted = cfg.sustained_requests;
    let shortest = *cfg.lengths.iter().min().expect("lengths are non-empty");
    let tickets: Vec<_> = (0..submitted)
        .map(|r| {
            let tokens: Vec<usize> = (0..shortest)
                .map(|i| (i * 31 + r * 7) % cfg.model.vocab)
                .collect();
            server.submit(tokens)
        })
        .collect();
    let mut rejected = 0usize;
    let mut served_ok = 0usize;
    for t in tickets {
        match t.wait() {
            Ok(_) => served_ok += 1,
            Err(ServeError::Overloaded { .. }) => rejected += 1,
            Err(e) => panic!("overload burst saw an unexpected failure: {e}"),
        }
    }
    // The burst is fully resolved, so the queue is back under the
    // watermark: admission must recover.
    let recovered = server.submit(vec![1; shortest]).wait().is_ok();
    OverloadRun {
        watermark: cfg.overload_watermark,
        submitted,
        rejected,
        served_ok,
        recovered,
    }
}

struct ShardedRun {
    replicas: usize,
    requests: usize,
    routed: Vec<u64>,
    balance: f64,
    tokens_per_sec: f64,
    recovery_ms: f64,
    all_served: bool,
    recovered: bool,
}

/// Part 4: replica-sharded serving. A clean two-replica run measures
/// join-shortest-queue routing balance and fleet throughput; a faulted
/// run — replica 0's first batch panics, one strike quarantines —
/// measures how long failover → probe → re-admission takes end to end.
fn run_sharded(cfg: &Config, model: &BertModel, kit: &NnLutKit) -> ShardedRun {
    // The faulted run's panic is supposed to fire; keep the default
    // hook's stderr spew out of the bench output.
    static QUIET: Once = Once::new();
    QUIET.call_once(|| {
        let default_hook = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let message = info
                .payload()
                .downcast_ref::<String>()
                .map(String::as_str)
                .or_else(|| info.payload().downcast_ref::<&str>().copied())
                .unwrap_or("");
            if !message.contains(INJECTED_PANIC_PREFIX) {
                default_hook(info);
            }
        }));
    });

    let replicas = 2usize;
    let replica_cfg = AsyncServerConfig {
        threads: 1,
        policy: cfg.policy.clone().with_buckets(cfg.bucket_edges.to_vec()),
        close: ClosePolicy {
            max_batch_age: Duration::from_millis(2),
            deadline_slack: Duration::from_millis(1),
        },
        ..AsyncServerConfig::default()
    };
    let requests: Vec<Vec<usize>> = (0..cfg.sustained_requests)
        .map(|r| {
            let len = cfg.lengths[r % cfg.lengths.len()];
            (0..len)
                .map(|i| (i * 31 + r * 7) % cfg.model.vocab)
                .collect()
        })
        .collect();

    // Clean run: routing balance + throughput across the fleet. The
    // stall watchdog is parked far beyond any honest encode time — on a
    // slow single-core runner a full-config batch takes seconds, and a
    // watchdog trip here would masquerade as a failure.
    let mut server = ShardedServer::new(
        model.clone(),
        kit.clone(),
        ShardConfig {
            replicas,
            replica: replica_cfg.clone(),
            stall_timeout: Duration::from_secs(120),
            ..ShardConfig::default()
        },
    );
    let start = Instant::now();
    let tickets: Vec<_> = requests.iter().cloned().map(|t| server.submit(t)).collect();
    let mut tokens = 0usize;
    for t in tickets {
        tokens += t.wait().expect("no faults in the clean run").tokens;
    }
    let wall = start.elapsed().as_secs_f64();
    let routed: Vec<u64> = server.status().iter().map(|s| s.routed).collect();
    let max_routed = routed.iter().copied().max().unwrap_or(0);
    let min_routed = routed.iter().copied().min().unwrap_or(0);
    let balance = if max_routed == 0 {
        1.0
    } else {
        min_routed as f64 / max_routed as f64
    };
    let tokens_per_sec = tokens as f64 / wall;
    server.shutdown();

    // Faulted run: replica 0's first batch dies, it quarantines on the
    // strike, and the probe cycle re-admits it. Recovery time is from
    // first submission to the replica standing Healthy again.
    let mut server = ShardedServer::new(
        model.clone(),
        kit.clone(),
        ShardConfig {
            replicas,
            replica: replica_cfg,
            quarantine_after: 1,
            probe_backoff: Duration::from_millis(5),
            stall_timeout: Duration::from_secs(120),
            fault_plan: Some(Arc::new(FaultPlan::new().panic_at(0, 0))),
            ..ShardConfig::default()
        },
    );
    let start = Instant::now();
    let tickets: Vec<_> = requests.into_iter().map(|t| server.submit(t)).collect();
    let all_served = tickets.into_iter().all(|t| t.wait().is_ok());
    let deadline = Instant::now() + Duration::from_secs(30);
    let recovered = loop {
        let status = server.status();
        let s0 = &status[0];
        if s0.readmissions >= 1 && s0.health == ReplicaHealth::Healthy {
            break true;
        }
        if Instant::now() >= deadline {
            break false;
        }
        std::thread::sleep(Duration::from_millis(1));
    };
    let recovery_ms = start.elapsed().as_secs_f64() * 1e3;
    server.shutdown();

    ShardedRun {
        replicas,
        requests: cfg.sustained_requests,
        routed,
        balance,
        tokens_per_sec,
        recovery_ms,
        all_served,
        recovered,
    }
}

struct CodebookRun {
    bake_s: f64,
    table_mib: f64,
    tokens_per_sec_f32: f64,
    tokens_per_sec: f64,
    speedup_vs_f32: f64,
    rel_err_vs_f32: f64,
}

/// Part 7: codebook serving. Bakes centroid codebooks onto the bench
/// model (calibrated on the serve workload itself), then pushes the same
/// workload through `LutServer` in `MatmulMode::Codebook` vs `F32` on one
/// pool thread, reporting the throughput ratio, the end-to-end relative
/// (Frobenius) error of the served hidden states, and the one-time bake
/// cost. The speedup is recorded-level context like the `simd` section:
/// on a scalar build the gather kernel is the oracle and the ratio mostly
/// reflects arithmetic savings alone.
fn run_codebook(cfg: &Config, model: &BertModel, kit: &NnLutKit) -> CodebookRun {
    let bake_start = Instant::now();
    let mut baked = model.clone();
    baked.bake_codebooks(
        &CodebookSpec::default(),
        &workload(cfg),
        &Nonlinearity::exact(),
        256,
    );
    let bake_s = bake_start.elapsed().as_secs_f64();
    let table_mib = baked.codebook_table_bytes() as f64 / (1024.0 * 1024.0);

    let serve = |mode: MatmulMode| {
        let mut server = LutServer::new(
            baked.clone(),
            kit.clone(),
            ServerConfig {
                threads: 1,
                policy: cfg.policy.clone(),
                mode,
                ..ServerConfig::default()
            },
        );
        let responses = server.serve(workload(cfg));
        (responses, server.metrics().tokens_per_sec())
    };
    let (exact, f32_tps) = serve(MatmulMode::F32);
    let (approx, cb_tps) = serve(MatmulMode::Codebook);
    let mut err = 0.0f64;
    let mut norm = 0.0f64;
    for (a, e) in approx.iter().zip(&exact) {
        for (x, y) in a.hidden.as_slice().iter().zip(e.hidden.as_slice()) {
            err += ((x - y) as f64).powi(2);
            norm += (*y as f64).powi(2);
        }
    }
    CodebookRun {
        bake_s,
        table_mib,
        tokens_per_sec_f32: f32_tps,
        tokens_per_sec: cb_tps,
        speedup_vs_f32: cb_tps / f32_tps,
        rel_err_vs_f32: (err / norm.max(f64::MIN_POSITIVE)).sqrt(),
    }
}

struct DecodeRun {
    context: usize,
    tokens_per_sec: f64,
    steps_per_sec: f64,
    inter_p50_ms: f64,
    inter_p95_ms: f64,
    batch_width: f64,
    wall_s: f64,
}

struct MixRun {
    encodes: usize,
    generations: usize,
    tokens_per_sec: f64,
    steps_per_sec: f64,
    wall_s: f64,
}

/// The model of part 6: the bench shapes with `max_seq` stretched to
/// hold the longest decode context plus its token budget, so the KV
/// cache genuinely reaches the swept depths.
fn decode_model(cfg: &Config) -> BertModel {
    let longest = cfg.decode_contexts.iter().max().expect("non-empty sweep");
    let model_cfg = TransformerConfig {
        // Never below the base shapes' max_seq: the mix leg still pushes
        // the ordinary encode workload through this model.
        max_seq: (longest + cfg.decode_max_new).max(cfg.model.max_seq),
        ..cfg.model.clone()
    };
    BertModel::new_synthetic(model_cfg, nnlut_bench::KIT_SEED)
}

/// One decode-sweep leg: `decode_streams` concurrent generations, each
/// prefilling a `context`-token prompt and decoding `decode_max_new`
/// tokens through the continuous-batching plane. A fresh server per leg
/// keeps the inter-token sketch scoped to this context depth.
fn run_decode_context(
    cfg: &Config,
    model: &BertModel,
    kit: &NnLutKit,
    context: usize,
) -> DecodeRun {
    let server = AsyncLutServer::new(
        model.clone(),
        kit.clone(),
        AsyncServerConfig {
            threads: 1,
            max_in_flight: 2,
            policy: BatchPolicy {
                max_batch: cfg.decode_streams.max(2),
                max_padded_tokens: context * cfg.decode_streams + 64,
                bucket_edges: Vec::new(),
            },
            close: ClosePolicy {
                max_batch_age: Duration::from_millis(2),
                deadline_slack: Duration::from_millis(1),
            },
            ..AsyncServerConfig::default()
        },
    );
    let start = Instant::now();
    let tickets: Vec<_> = (0..cfg.decode_streams)
        .map(|s| {
            let prompt: Vec<usize> = (0..context)
                .map(|i| (i * 31 + s * 97) % cfg.model.vocab)
                .collect();
            server.submit_generate(prompt, cfg.decode_max_new, None)
        })
        .collect();
    let mut generated = 0usize;
    for t in tickets {
        generated += t.wait().expect("no deadlines in play").tokens.len();
    }
    let wall = start.elapsed().as_secs_f64();
    let m = server.metrics();
    DecodeRun {
        context,
        tokens_per_sec: generated as f64 / wall,
        steps_per_sec: m.decode_steps_per_sec(),
        inter_p50_ms: m
            .inter_token_percentile(50.0)
            .unwrap_or_default()
            .as_secs_f64()
            * 1e3,
        inter_p95_ms: m
            .inter_token_percentile(95.0)
            .unwrap_or_default()
            .as_secs_f64()
            * 1e3,
        batch_width: m.decode_batch_width(),
        wall_s: wall,
    }
}

/// One prefill:decode mix leg: `encodes` whole-sequence requests and
/// `generations` streams interleaved into one queue — the number under
/// test is how much encode traffic and the decode plane cost each other.
fn run_decode_mix(
    cfg: &Config,
    model: &BertModel,
    kit: &NnLutKit,
    encodes: usize,
    generations: usize,
) -> MixRun {
    let context = cfg.decode_contexts[0];
    let server = AsyncLutServer::new(
        model.clone(),
        kit.clone(),
        AsyncServerConfig {
            threads: 1,
            max_in_flight: 2,
            policy: cfg.policy.clone().with_buckets(cfg.bucket_edges.to_vec()),
            close: ClosePolicy {
                max_batch_age: Duration::from_millis(2),
                deadline_slack: Duration::from_millis(1),
            },
            ..AsyncServerConfig::default()
        },
    );
    let start = Instant::now();
    let mut enc_tickets = Vec::with_capacity(encodes);
    let mut gen_tickets = Vec::with_capacity(generations);
    for r in 0..encodes.max(generations) {
        if r < encodes {
            let len = cfg.lengths[r % cfg.lengths.len()];
            enc_tickets.push(
                server.submit(
                    (0..len)
                        .map(|i| (i * 31 + r * 7) % cfg.model.vocab)
                        .collect(),
                ),
            );
        }
        if r < generations {
            let prompt: Vec<usize> = (0..context)
                .map(|i| (i * 13 + r * 5) % cfg.model.vocab)
                .collect();
            gen_tickets.push(server.submit_generate(prompt, cfg.decode_max_new, None));
        }
    }
    let mut tokens = 0usize;
    for t in enc_tickets {
        tokens += t.wait().expect("no deadlines in play").tokens;
    }
    for t in gen_tickets {
        let r = t.wait().expect("no deadlines in play");
        tokens += context + r.tokens.len();
    }
    let wall = start.elapsed().as_secs_f64();
    let m = server.metrics();
    MixRun {
        encodes,
        generations,
        tokens_per_sec: tokens as f64 / wall,
        steps_per_sec: m.decode_steps_per_sec(),
        wall_s: wall,
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .map(|i| args.get(i + 1).expect("--out takes a path").clone());
    let cfg = if quick { quick_config() } else { full_config() };
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());

    println!(
        "bench_serve: {} · {} requests · lengths {:?} · machine cores {}",
        cfg.label, cfg.requests, cfg.lengths, cores
    );
    println!("training a fast-config 16-entry kit (contents don't affect throughput) …");
    let kit = NnLutKit::train_with(16, nnlut_bench::KIT_SEED, &TrainConfig::fast());
    let model = BertModel::new_synthetic(cfg.model.clone(), nnlut_bench::KIT_SEED);

    // Part 1: pooled-thread sweep (FIFO admission, the PR-2 trajectory).
    // The threads==1 run doubles as the FIFO baseline of part 2.
    let mut rows: Vec<Measurement> = Vec::new();
    let mut fifo_serial: Option<(Measurement, f64)> = None;
    for &threads in cfg.threads {
        let (m, eff) = run_once(&cfg, &model, &kit, threads, cfg.policy.clone());
        println!(
            "  threads {:>2}: {:>9.1} tok/s · p50 {:>8.2} ms · p95 {:>8.2} ms · wall {:>6.2} s",
            m.threads, m.tokens_per_sec, m.p50_ms, m.p95_ms, m.wall_s
        );
        if threads == 1 {
            fifo_serial = Some((m.clone(), eff));
        }
        rows.push(m);
    }
    let serial = rows[0].tokens_per_sec;
    for m in &rows[1..] {
        println!(
            "  pooled speedup at {} threads: {:.2}x",
            m.threads,
            m.tokens_per_sec / serial
        );
    }

    // Part 2: admission comparison — the same mixed-length workload packed
    // FIFO vs through length buckets, serial pool (padding is a pure
    // function of admission order; threads don't move it). The FIFO
    // baseline is part 1's threads==1 run; only bucketed runs fresh.
    let bucketed_policy = cfg.policy.clone().with_buckets(cfg.bucket_edges.to_vec());
    let (fifo_m, fifo_eff) = fifo_serial.expect("thread sweep always includes threads == 1");
    let (bucketed_m, bucketed_eff) = run_once(&cfg, &model, &kit, 1, bucketed_policy);
    println!("  admission (1 thread, same workload):");
    println!(
        "    fifo     : padding eff {:.3} · {:>9.1} tok/s",
        fifo_eff, fifo_m.tokens_per_sec
    );
    println!(
        "    bucketed : padding eff {:.3} · {:>9.1} tok/s  (edges {:?})",
        bucketed_eff, bucketed_m.tokens_per_sec, cfg.bucket_edges
    );
    println!(
        "    padding-efficiency gain: {:+.1}% · throughput gain: {:+.1}%",
        (bucketed_eff / fifo_eff - 1.0) * 100.0,
        (bucketed_m.tokens_per_sec / fifo_m.tokens_per_sec - 1.0) * 100.0
    );
    // Part 3: sustained async serving — 1 vs 2 batches in flight on the
    // same workload, the steady-state metrics footprint (RSS proxy), and
    // an overload burst against a tight watermark.
    println!("  sustained (async, {} requests):", cfg.sustained_requests);
    let sustained: Vec<SustainedRun> = [1usize, 2]
        .iter()
        .map(|&mif| {
            let run = run_sustained(&cfg, &model, &kit, mif);
            println!(
                "    in-flight {}: {:>9.1} tok/s · wall {:>6.2} s · metrics {} B (sketch {})",
                run.max_in_flight,
                run.tokens_per_sec,
                run.wall_s,
                run.metrics_bytes,
                run.sketch_capacity
            );
            run
        })
        .collect();
    assert_eq!(
        sustained[0].metrics_bytes, sustained[1].metrics_bytes,
        "metrics footprint is a function of configuration, not of the run"
    );
    let overload = run_overload(&cfg, &model, &kit);
    println!(
        "    overload : watermark {} · {}/{} rejected at the door · {} served · door reopened: {}",
        overload.watermark,
        overload.rejected,
        overload.submitted,
        overload.served_ok,
        overload.recovered
    );

    // Part 5 measurement runs before part 4's panic-hook installation is
    // needed; order in the printout follows the ledger.
    let trace_overhead = run_trace_overhead(&cfg, &model, &kit);
    println!(
        "  trace overhead ({} paired runs): off {:>9.1} tok/s · on {:>9.1} tok/s · {:.2}% \
         (recorder {} events, {} B)",
        trace_overhead.runs,
        trace_overhead.tokens_per_sec_off,
        trace_overhead.tokens_per_sec_on,
        trace_overhead.overhead_pct,
        trace_overhead.recorder_capacity,
        trace_overhead.recorder_bytes,
    );

    // Part 4: replica-sharded serving — routing balance on a clean fleet,
    // recovery time through a deterministic failure.
    let sharded = run_sharded(&cfg, &model, &kit);
    println!(
        "  sharded ({} replicas, {} requests):",
        sharded.replicas, sharded.requests
    );
    println!(
        "    routing  : {:?} routed · balance {:.3} · {:>9.1} tok/s",
        sharded.routed, sharded.balance, sharded.tokens_per_sec
    );
    println!(
        "    failover : recovery {:.1} ms · all served: {} · replica re-admitted: {}",
        sharded.recovery_ms, sharded.all_served, sharded.recovered
    );

    // Part 7: codebook serving — measured before part 6 spins up the
    // stretched decode model; printout order follows the ledger.
    let codebook = run_codebook(&cfg, &model, &kit);
    println!("  codebook (1 thread, same workload):");
    println!(
        "    bake {:.2} s · tables {:.2} MiB · f32 {:>9.1} tok/s · codebook {:>9.1} tok/s · {:.2}x · rel err {:.4}",
        codebook.bake_s,
        codebook.table_mib,
        codebook.tokens_per_sec_f32,
        codebook.tokens_per_sec,
        codebook.speedup_vs_f32,
        codebook.rel_err_vs_f32
    );

    // Part 6: autoregressive decoding through the continuous-batching
    // plane — context sweep, then the prefill:decode mix.
    let dmodel = decode_model(&cfg);
    println!(
        "  decode ({} streams × {} tokens, contexts {:?}):",
        cfg.decode_streams, cfg.decode_max_new, cfg.decode_contexts
    );
    let decode_runs: Vec<DecodeRun> = cfg
        .decode_contexts
        .iter()
        .map(|&context| {
            let run = run_decode_context(&cfg, &dmodel, &kit, context);
            println!(
                "    context {:>5}: {:>8.1} tok/s · steps {:>8.1}/s · inter-token p50 {:>8.2} ms · p95 {:>8.2} ms · width {:.2} · wall {:>6.2} s",
                run.context,
                run.tokens_per_sec,
                run.steps_per_sec,
                run.inter_p50_ms,
                run.inter_p95_ms,
                run.batch_width,
                run.wall_s
            );
            run
        })
        .collect();
    let mix_runs: Vec<MixRun> = cfg
        .decode_mixes
        .iter()
        .map(|&(encodes, generations)| {
            let run = run_decode_mix(&cfg, &dmodel, &kit, encodes, generations);
            println!(
                "    mix {:>2}:{:<2}   : {:>8.1} tok/s · decode steps {:>8.1}/s · wall {:>6.2} s",
                run.encodes, run.generations, run.tokens_per_sec, run.steps_per_sec, run.wall_s
            );
            run
        })
        .collect();

    let mcfg = &cfg.model;
    {
        let mut section = format!(
            "{{\n    \"machine_cores\": {cores},\n    \"model\": {{\"hidden\": {}, \"heads\": {}, \"ffn\": {}, \"layers\": {}}},\n    \"requests\": {},\n    \"configs\": [\n",
            mcfg.hidden, mcfg.heads, mcfg.ffn, mcfg.layers, cfg.requests
        );
        for (i, m) in rows.iter().enumerate() {
            section.push_str(&format!(
                "      {{\"threads\": {}, \"tokens_per_sec\": {:.1}, \"p50_ms\": {:.2}, \"p95_ms\": {:.2}, \"speedup_vs_serial\": {:.3}}}{}\n",
                m.threads,
                m.tokens_per_sec,
                m.p50_ms,
                m.p95_ms,
                m.tokens_per_sec / serial,
                if i + 1 == rows.len() { "" } else { "," }
            ));
        }
        section.push_str("    ],\n");
        section.push_str(&format!(
            "    \"admission\": {{\n      \"lengths\": {:?},\n      \"bucket_edges\": {:?},\n      \"fifo\": {{\"padding_efficiency\": {:.4}, \"tokens_per_sec\": {:.1}}},\n      \"bucketed\": {{\"padding_efficiency\": {:.4}, \"tokens_per_sec\": {:.1}}},\n      \"padding_efficiency_gain\": {:.4}\n    }},\n",
            cfg.lengths,
            cfg.bucket_edges,
            fifo_eff,
            fifo_m.tokens_per_sec,
            bucketed_eff,
            bucketed_m.tokens_per_sec,
            bucketed_eff / fifo_eff,
        ));
        section.push_str(&format!(
            "    \"sustained\": {{\n      \"requests\": {},\n      \"in_flight\": [\n",
            cfg.sustained_requests
        ));
        for (i, run) in sustained.iter().enumerate() {
            section.push_str(&format!(
                "        {{\"max_in_flight\": {}, \"tokens_per_sec\": {:.1}, \"wall_s\": {:.3}}}{}\n",
                run.max_in_flight,
                run.tokens_per_sec,
                run.wall_s,
                if i + 1 == sustained.len() { "" } else { "," }
            ));
        }
        section.push_str(&format!(
            "      ],\n      \"metrics_bytes_steady\": {},\n      \"sketch_capacity\": {},\n      \"overload\": {{\"watermark_depth\": {}, \"submitted\": {}, \"rejected\": {}, \"served_ok\": {}, \"reject_rate\": {:.4}, \"recovered\": {}}}\n    }},\n",
            sustained[0].metrics_bytes,
            sustained[0].sketch_capacity,
            overload.watermark,
            overload.submitted,
            overload.rejected,
            overload.served_ok,
            overload.rejected as f64 / overload.submitted as f64,
            overload.recovered,
        ));
        section.push_str(&format!(
            "    \"sharded\": {{\n      \"replicas\": {},\n      \"requests\": {},\n      \"routed\": {:?},\n      \"balance\": {:.4},\n      \"tokens_per_sec\": {:.1},\n      \"failover\": {{\"recovery_ms\": {:.1}, \"all_served\": {}, \"recovered\": {}}}\n    }},\n",
            sharded.replicas,
            sharded.requests,
            sharded.routed,
            sharded.balance,
            sharded.tokens_per_sec,
            sharded.recovery_ms,
            sharded.all_served,
            sharded.recovered,
        ));
        section.push_str(&format!(
            "    \"decode\": {{\n      \"streams\": {},\n      \"max_new\": {},\n      \"max_seq\": {},\n      \"contexts\": [\n",
            cfg.decode_streams,
            cfg.decode_max_new,
            (cfg.decode_contexts.iter().max().expect("non-empty sweep") + cfg.decode_max_new)
                .max(cfg.model.max_seq),
        ));
        for (i, run) in decode_runs.iter().enumerate() {
            section.push_str(&format!(
                "        {{\"context\": {}, \"tokens_per_sec\": {:.1}, \"decode_steps_per_sec\": {:.1}, \"inter_token_p50_ms\": {:.3}, \"inter_token_p95_ms\": {:.3}, \"batch_width\": {:.2}, \"wall_s\": {:.3}}}{}\n",
                run.context,
                run.tokens_per_sec,
                run.steps_per_sec,
                run.inter_p50_ms,
                run.inter_p95_ms,
                run.batch_width,
                run.wall_s,
                if i + 1 == decode_runs.len() { "" } else { "," }
            ));
        }
        section.push_str("      ],\n      \"mix\": [\n");
        for (i, run) in mix_runs.iter().enumerate() {
            section.push_str(&format!(
                "        {{\"encodes\": {}, \"generations\": {}, \"tokens_per_sec\": {:.1}, \"decode_steps_per_sec\": {:.1}, \"wall_s\": {:.3}}}{}\n",
                run.encodes,
                run.generations,
                run.tokens_per_sec,
                run.steps_per_sec,
                run.wall_s,
                if i + 1 == mix_runs.len() { "" } else { "," }
            ));
        }
        section.push_str("      ]\n    },\n");
        section.push_str(&format!(
            "    \"codebook\": {{\n      \"bake_s\": {:.3},\n      \"table_mib\": {:.3},\n      \"tokens_per_sec_f32\": {:.1},\n      \"tokens_per_sec\": {:.1},\n      \"speedup_vs_f32\": {:.4},\n      \"rel_err_vs_f32\": {:.5}\n    }},\n",
            codebook.bake_s,
            codebook.table_mib,
            codebook.tokens_per_sec_f32,
            codebook.tokens_per_sec,
            codebook.speedup_vs_f32,
            codebook.rel_err_vs_f32,
        ));
        section.push_str(&format!(
            "    \"trace_overhead\": {{\n      \"runs\": {},\n      \"requests\": {},\n      \"tokens_per_sec_off\": {:.1},\n      \"tokens_per_sec_on\": {:.1},\n      \"overhead_pct\": {:.2},\n      \"recorder_capacity\": {},\n      \"recorder_bytes\": {}\n    }}\n  }}",
            trace_overhead.runs,
            cfg.sustained_requests,
            trace_overhead.tokens_per_sec_off,
            trace_overhead.tokens_per_sec_on,
            trace_overhead.overhead_pct,
            trace_overhead.recorder_capacity,
            trace_overhead.recorder_bytes,
        ));
        if let Some(path) = &out_path {
            std::fs::write(path, format!("{}\n", section.trim_start()))
                .unwrap_or_else(|e| panic!("write {path}: {e}"));
            println!("\nwrote this run's serve section to {path}");
        }
        if cfg.write_json {
            let existing = std::fs::read_to_string("BENCH_lut_eval.json").unwrap_or_default();
            let json = upsert_json_key(&existing, "serve", &section);
            std::fs::write("BENCH_lut_eval.json", &json).expect("write BENCH_lut_eval.json");
            println!("wrote serve section of BENCH_lut_eval.json");
        } else {
            println!("--quick: smoke run, BENCH_lut_eval.json untouched");
        }
    }

    // Regression guard *after* the ledger write, so a failing comparison
    // still leaves the measurements on disk (and fails CI's --quick run).
    assert!(
        bucketed_eff >= fifo_eff,
        "bucketed admission must not pad more than FIFO on the mixed workload \
         (bucketed {bucketed_eff:.3} < fifo {fifo_eff:.3})"
    );
    for run in &decode_runs {
        assert!(
            run.tokens_per_sec > 0.0 && run.inter_p50_ms > 0.0,
            "decode @ context {}: degenerate measurement",
            run.context
        );
        assert!(
            run.inter_p95_ms >= run.inter_p50_ms,
            "decode @ context {}: p95 {:.3} ms below p50 {:.3} ms",
            run.context,
            run.inter_p95_ms,
            run.inter_p50_ms
        );
    }
}
