//! Explicit SIMD batch kernels for the baked FP32 LUT engine.
//!
//! The scalar [`BakedLut::eval_slice_scalar`] kernel is already branchless
//! and autovectorizes its cell-map pass, but the gather side — cell record
//! → segment index → `(slope, intercept)` → multiply-add — is left to
//! whatever LLVM can prove. This module makes the whole pipeline explicit
//! `core::arch` SIMD:
//!
//! * **AVX2** ([`SimdLevel::Avx2`]): one 8-lane pass per 8 elements,
//!   picking one of three sub-paths at bake time:
//!   * **register-resident** (tables with ≤ 16 segments — every
//!     paper-config table): no gathers at all. Broadcast compares count
//!     `breakpoint ≤ x` to get the segment index, then `vpermd` + blend
//!     selects `(slope, intercept)` from four in-register vectors.
//!     Gather-free matters: `vgatherdps` is microcoded on several x86
//!     families and can lose to the scalar kernel outright.
//!   * **fused gather** (larger tables, ≤ 1 breakpoint per grid cell):
//!     vectorized mantissa-trick cell map, then five stride-5 gathers
//!     into the `#[repr(C)]` fused cell and a branchless blend select.
//!   * **general gather** (adversarial tables): cell-record gather plus
//!     one gather per fixed-window scan step.
//! * **SSE2** ([`SimdLevel::Sse2`]): the cell-map pass runs 4 lanes wide;
//!   the gather side has no hardware gather before AVX2, so it reuses the
//!   scalar chunk loop. This is the x86-64 baseline fallback — every
//!   x86-64 CPU has SSE2, so [`detect`] never returns
//!   [`SimdLevel::Scalar`] on that architecture when the `simd` feature is
//!   compiled in.
//! * **Scalar** ([`SimdLevel::Scalar`]): the oracle. Non-x86-64 targets
//!   and `--no-default-features` builds always take it.
//!
//! # The bitwise contract
//!
//! Every kernel here is **bit-identical** to the scalar oracle for every
//! input — NaN payloads, infinities, breakpoint-exact values, duplicate
//! breakpoints, non-multiple-of-lane-width tails. ULP-exact is *not* the
//! contract; the bits are. Three rules make that hold (and
//! docs/PERFORMANCE.md walks through why each one matters):
//!
//! 1. **No FMA.** The scalar kernel computes `s·x + t` as an IEEE multiply
//!    followed by an IEEE add, rounding twice. `vfmadd*` rounds once and
//!    would differ in the last bit on roughly one input in a thousand, so
//!    the kernels use `mul` + `add` even where FMA would be faster.
//! 2. **Same special-value routing.** `max(t, 0)` must squash NaN to `0.0`
//!    exactly like Rust's `f32::max`; `maxps`/`vmaxps` return their
//!    *second* operand on NaN, so the kernels pass the constant second —
//!    `max_ps(t, zero)` — matching the scalar `t.max(0.0)`.
//! 3. **Same gather order.** The in-cell scan compares the same `scan_len`
//!    breakpoints in the same order against the same clamped cell index,
//!    so the comparison count (and therefore the gathered parameter pair)
//!    is the scalar one, lane for lane.
//!
//! The contract is enforced by `tests/engine_equivalence.rs` (a
//! SIMD-vs-scalar property leg over adversarial tables) and inherited by
//! everything downstream: the serve determinism matrix and the chaos suite
//! run bit-identical with the feature on or off.
//!
//! # Dispatch
//!
//! Detection happens **once, at bake time**: [`BakedLut::new`] stamps the
//! result of [`detect`] into the engine, and every subsequent
//! [`BakedLut::eval_slice`] call branches on that stored level — no
//! per-call CPUID, no per-element dispatch.

use super::BakedLut;
#[cfg(all(feature = "simd", target_arch = "x86_64"))]
use super::MANTISSA_MAGIC;
#[cfg(all(feature = "simd", target_arch = "x86_64"))]
use super::{gather_chunk_fused, gather_chunk_general, SCALAR_CHUNK};

/// The batch-kernel tier a [`BakedLut`] was baked for.
///
/// Ordered weakest to strongest; the bake picks the strongest level the
/// running CPU supports (see [`detect`]).
///
/// # Examples
///
/// ```
/// use nnlut_core::engine::simd::{self, SimdLevel};
///
/// let level = simd::detect();
/// // On x86-64 with the `simd` feature on, SSE2 is the guaranteed floor.
/// #[cfg(all(feature = "simd", target_arch = "x86_64"))]
/// assert!(level >= SimdLevel::Sse2);
/// #[cfg(not(all(feature = "simd", target_arch = "x86_64")))]
/// assert_eq!(level, SimdLevel::Scalar);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum SimdLevel {
    /// The scalar oracle kernel (always available, always correct).
    Scalar,
    /// 4-lane SSE2 cell map + scalar gathers (x86-64 baseline).
    Sse2,
    /// 8-lane AVX2 kernel with hardware gathers.
    Avx2,
}

impl SimdLevel {
    /// Stable lowercase name, used by the bench ledger's `simd.level`
    /// field and the `bench_check` gate.
    pub fn name(self) -> &'static str {
        match self {
            SimdLevel::Scalar => "scalar",
            SimdLevel::Sse2 => "sse2",
            SimdLevel::Avx2 => "avx2",
        }
    }
}

/// Detects the strongest kernel tier the running CPU supports.
///
/// Called once per bake by [`BakedLut::new`]. Returns
/// [`SimdLevel::Scalar`] unless the `simd` cargo feature is enabled *and*
/// the target is x86-64; on x86-64 the floor is [`SimdLevel::Sse2`]
/// (architecturally guaranteed) and AVX2 is probed at runtime with
/// `is_x86_feature_detected!`.
///
/// # Examples
///
/// ```
/// use nnlut_core::engine::BakedLut;
/// use nnlut_core::engine::simd;
/// use nnlut_core::{LookupTable, Segment};
///
/// let lut = LookupTable::new(
///     vec![0.0],
///     vec![Segment::new(-1.0, 0.0), Segment::new(1.0, 0.0)],
/// )?;
/// let baked = BakedLut::new(lut);
/// // The bake stamps the detected level into the engine…
/// assert_eq!(baked.simd_level(), simd::detect());
/// // …and whatever that level is, the dispatched kernel is bit-identical
/// // to the scalar oracle.
/// let xs = [-2.5f32, -0.0, 3.75, f32::NAN, f32::INFINITY];
/// let mut dispatched = xs.to_vec();
/// let mut scalar = xs.to_vec();
/// baked.eval_slice(&mut dispatched);
/// baked.eval_slice_scalar(&mut scalar);
/// for (d, s) in dispatched.iter().zip(&scalar) {
///     assert_eq!(d.to_bits(), s.to_bits());
/// }
/// # Ok::<(), nnlut_core::CoreError>(())
/// ```
pub fn detect() -> SimdLevel {
    #[cfg(all(feature = "simd", target_arch = "x86_64"))]
    {
        if is_x86_feature_detected!("avx2") {
            return SimdLevel::Avx2;
        }
        // SSE2 is part of the x86-64 baseline ISA: unconditionally true.
        SimdLevel::Sse2
    }
    #[cfg(not(all(feature = "simd", target_arch = "x86_64")))]
    SimdLevel::Scalar
}

/// The AVX2 batch kernel: 8 lanes per iteration, hardware gathers,
/// bit-identical to [`BakedLut::eval_slice_scalar`].
///
/// # Safety
///
/// The caller must guarantee the running CPU supports AVX2 (the bake only
/// stamps [`SimdLevel::Avx2`] after `is_x86_feature_detected!("avx2")`
/// returned true) and that `lut.scan_len > 0` (single-segment tables take
/// the affine fast path before dispatch).
#[cfg(all(feature = "simd", target_arch = "x86_64"))]
#[target_feature(enable = "avx2")]
pub(super) unsafe fn eval_slice_avx2(lut: &BakedLut, xs: &mut [f32]) {
    use core::arch::x86_64::*;

    debug_assert!(
        lut.scan_len > 0,
        "affine fast path must run before dispatch"
    );
    let n8 = xs.len() & !7;

    if let Some(reg) = &lut.reg {
        // Register-resident path (tables with ≤ 16 segments — every
        // paper-config table): no gathers at all. The segment index is
        // the global count of `breakpoint ≤ x` — bit-identical to the
        // grid walk by the `Grid` exactness argument (`base + in-cell
        // count = partition_point(d ≤ x)` for every input, NaN included:
        // all ordered compares fail, giving index 0 on both paths). The
        // `(slope, intercept)` pair is then selected from four vector
        // registers with `vpermd` + blend. Hardware gathers are
        // microcoded on several x86 families and can run *slower* than
        // the scalar kernel; broadcast-compare + permute is fast on
        // every AVX2 implementation.
        let s_lo = _mm256_loadu_ps(reg.slopes.as_ptr());
        let s_hi = _mm256_loadu_ps(reg.slopes.as_ptr().add(8));
        let t_lo = _mm256_loadu_ps(reg.intercepts.as_ptr());
        let t_hi = _mm256_loadu_ps(reg.intercepts.as_ptr().add(8));
        let seven = _mm256_set1_epi32(7);
        let c8 = _mm256_set1_epi32(8);
        let c4 = _mm256_set1_epi32(4);
        let c2 = _mm256_set1_epi32(2);
        // Pivot registers of the 4-level branchless binary search over
        // the NaN-padded sorted breakpoints `b[0..16]`. Searching for
        // `partition_point(b ≤ x)` needs only `log2(16) = 4` ordered
        // compares per lane instead of 16: the predicate `b[i] ≤ x` is
        // monotone non-increasing in `i` (breakpoints are validated
        // sorted; the NaN tail always compares false), so the classic
        // stride-halving walk lands on the exact count — the same index
        // the scalar grid walk computes, NaN inputs included (every
        // probe fails, leaving index 0).
        let bp = &reg.breakpoints;
        let pivot8 = _mm256_set1_ps(bp[7]);
        let pivot4_lo = _mm256_set1_ps(bp[3]);
        let pivot4_hi = _mm256_set1_ps(bp[11]);
        // Stride-2 pivots `b[idx+1]` for `idx ∈ {0,4,8,12}`, fetched by
        // `vpermd` with `idx >> 2`; stride-1 pivots `b[idx]` for even
        // `idx`, fetched with `idx >> 1`.
        let pivot2 = _mm256_setr_ps(bp[1], bp[5], bp[9], bp[13], bp[1], bp[5], bp[9], bp[13]);
        let pivot1 = _mm256_setr_ps(bp[0], bp[2], bp[4], bp[6], bp[8], bp[10], bp[12], bp[14]);

        macro_rules! eval8 {
            ($p:expr) => {{
                let p = $p;
                let x = _mm256_loadu_ps(p);
                // Level 8: `b[7] ≤ x` ⟺ at least 8 breakpoints ≤ x.
                let m8 = _mm256_cmp_ps::<_CMP_LE_OQ>(pivot8, x);
                let mut idx = _mm256_and_si256(_mm256_castps_si256(m8), c8);
                // Level 4: probe `b[idx + 3]`, reusing `m8` as the select.
                let key = _mm256_blendv_ps(pivot4_lo, pivot4_hi, m8);
                let m4 = _mm256_cmp_ps::<_CMP_LE_OQ>(key, x);
                idx = _mm256_add_epi32(idx, _mm256_and_si256(_mm256_castps_si256(m4), c4));
                // Level 2: probe `b[idx + 1]`.
                let key = _mm256_permutevar8x32_ps(pivot2, _mm256_srli_epi32::<2>(idx));
                let m2 = _mm256_cmp_ps::<_CMP_LE_OQ>(key, x);
                idx = _mm256_add_epi32(idx, _mm256_and_si256(_mm256_castps_si256(m2), c2));
                // Level 1: probe `b[idx]`; cmp lanes are −1, so
                // subtracting adds the final 1.
                let key = _mm256_permutevar8x32_ps(pivot1, _mm256_srli_epi32::<1>(idx));
                let m1 = _mm256_cmp_ps::<_CMP_LE_OQ>(key, x);
                idx = _mm256_sub_epi32(idx, _mm256_castps_si256(m1));
                // `vpermd` reads the low 3 bits of each index lane; the
                // `idx > 7` mask picks the upper half of the 16-entry
                // parameter store.
                let hi = _mm256_castsi256_ps(_mm256_cmpgt_epi32(idx, seven));
                let s = _mm256_blendv_ps(
                    _mm256_permutevar8x32_ps(s_lo, idx),
                    _mm256_permutevar8x32_ps(s_hi, idx),
                    hi,
                );
                let t = _mm256_blendv_ps(
                    _mm256_permutevar8x32_ps(t_lo, idx),
                    _mm256_permutevar8x32_ps(t_hi, idx),
                    hi,
                );
                // mul + add, NOT fmadd: the scalar oracle rounds twice.
                _mm256_storeu_ps(p, _mm256_add_ps(_mm256_mul_ps(s, x), t));
            }};
        }

        let base = xs.as_mut_ptr();
        let n32 = xs.len() & !31;
        let mut i = 0;
        // 4×8 lanes per iteration: the four compare-count chains are
        // independent, so they overlap and hide each other's latency.
        while i < n32 {
            eval8!(base.add(i));
            eval8!(base.add(i + 8));
            eval8!(base.add(i + 16));
            eval8!(base.add(i + 24));
            i += 32;
        }
        while i < n8 {
            eval8!(base.add(i));
            i += 8;
        }
        if n8 < xs.len() {
            lut.eval_slice_scalar(&mut xs[n8..]);
        }
        return;
    }

    let lo = _mm256_set1_ps(lut.grid.lo);
    let inv_w = _mm256_set1_ps(lut.grid.inv_w);
    let mask = (lut.grid.cells.len() - 1) as u32;
    let mask_f = _mm256_set1_ps(mask as f32);
    let mask_i = _mm256_set1_epi32(mask as i32);
    let magic = _mm256_set1_ps(MANTISSA_MAGIC);
    let zero = _mm256_setzero_ps();

    // The vectorized cell map — identical op sequence (and therefore
    // identical rounding and NaN routing) to the scalar
    // `((x − lo) · inv_w).max(0.0).min(mask_f)` + mantissa trick.
    // `max_ps(t, zero)` returns `zero` when `t` is NaN, matching Rust's
    // `f32::max`; after it `t` is never NaN, so `min_ps` is exact too.
    macro_rules! cell_map {
        ($x:expr) => {{
            let t = _mm256_mul_ps(_mm256_sub_ps($x, lo), inv_w);
            let t = _mm256_min_ps(_mm256_max_ps(t, zero), mask_f);
            _mm256_and_si256(_mm256_castps_si256(_mm256_add_ps(t, magic)), mask_i)
        }};
    }

    if let Some(fused) = &lut.fused {
        // Fused single-breakpoint-per-cell layout: each `#[repr(C)]` cell
        // is five contiguous f32s `[key, lo_s, lo_t, hi_s, hi_t]`, so the
        // five gathers share one index vector `5·c` at scale 4 with the
        // base pointer stepped one field at a time.
        let base = fused.as_ptr() as *const f32;
        let mut i = 0;
        while i < n8 {
            let p = xs.as_mut_ptr().add(i);
            let x = _mm256_loadu_ps(p);
            let c = cell_map!(x);
            let off = _mm256_add_epi32(_mm256_slli_epi32(c, 2), c); // 5·c
            let key = _mm256_i32gather_ps::<4>(base, off);
            let lo_s = _mm256_i32gather_ps::<4>(base.add(1), off);
            let lo_t = _mm256_i32gather_ps::<4>(base.add(2), off);
            let hi_s = _mm256_i32gather_ps::<4>(base.add(3), off);
            let hi_t = _mm256_i32gather_ps::<4>(base.add(4), off);
            // `key ≤ x` (ordered: NaN key — the empty-cell sentinel — and
            // NaN x both select `lo`, exactly like the scalar compare).
            let take_hi = _mm256_cmp_ps::<_CMP_LE_OQ>(key, x);
            let s = _mm256_blendv_ps(lo_s, hi_s, take_hi);
            let t = _mm256_blendv_ps(lo_t, hi_t, take_hi);
            // mul + add, NOT fmadd: the scalar oracle rounds twice.
            _mm256_storeu_ps(p, _mm256_add_ps(_mm256_mul_ps(s, x), t));
            i += 8;
        }
    } else {
        // General layout: gather each lane's cell base, run the fixed
        // `scan_len` comparison window (NaN sentinels and later-cell
        // breakpoints compare false, exactly as in the scalar kernel),
        // then gather the selected `(slope, intercept)` pair.
        let cells = lut.grid.cells.as_ptr() as *const i32;
        let padded = lut.padded_breakpoints.as_ptr();
        let params = lut.params.as_ptr() as *const f32;
        let mut i = 0;
        while i < n8 {
            let p = xs.as_mut_ptr().add(i);
            let x = _mm256_loadu_ps(p);
            let c = cell_map!(x);
            // `Cell` is `#[repr(C)] { base: u32, count: u32 }`: the base
            // field of cell `c` sits at i32 offset `2·c`.
            let base_v = _mm256_i32gather_epi32::<4>(cells, _mm256_slli_epi32(c, 1));
            let mut idx = base_v;
            for j in 0..lut.scan_len {
                let at = _mm256_add_epi32(base_v, _mm256_set1_epi32(j as i32));
                let d = _mm256_i32gather_ps::<4>(padded, at);
                // cmp returns −1 per true lane; subtracting accumulates
                // the in-cell `(d ≤ x)` count just like the scalar `+=`.
                let le = _mm256_castps_si256(_mm256_cmp_ps::<_CMP_LE_OQ>(d, x));
                idx = _mm256_sub_epi32(idx, le);
            }
            let off = _mm256_slli_epi32(idx, 1); // params are [f32; 2]
            let s = _mm256_i32gather_ps::<4>(params, off);
            let t = _mm256_i32gather_ps::<4>(params.add(1), off);
            _mm256_storeu_ps(p, _mm256_add_ps(_mm256_mul_ps(s, x), t));
            i += 8;
        }
    }

    // Non-multiple-of-8 tail: the scalar oracle (bit-identical by
    // definition, and per-element results are position-independent).
    if n8 < xs.len() {
        lut.eval_slice_scalar(&mut xs[n8..]);
    }
}

/// The SSE2 batch kernel: the cell-map pass runs 4 lanes wide into the
/// chunk index buffer; the gather side (no hardware gather before AVX2)
/// reuses the scalar chunk loops. Bit-identical to
/// [`BakedLut::eval_slice_scalar`].
///
/// # Safety
///
/// SSE2 is architecturally guaranteed on x86-64, so the only obligation
/// is `lut.scan_len > 0` (the affine fast path runs before dispatch).
#[cfg(all(feature = "simd", target_arch = "x86_64"))]
#[target_feature(enable = "sse2")]
pub(super) unsafe fn eval_slice_sse2(lut: &BakedLut, xs: &mut [f32]) {
    use core::arch::x86_64::*;

    debug_assert!(
        lut.scan_len > 0,
        "affine fast path must run before dispatch"
    );
    let lo = _mm_set1_ps(lut.grid.lo);
    let inv_w = _mm_set1_ps(lut.grid.inv_w);
    let mask = (lut.grid.cells.len() - 1) as u32;
    let mask_f = _mm_set1_ps(mask as f32);
    let mask_i = _mm_set1_epi32(mask as i32);
    let magic = _mm_set1_ps(MANTISSA_MAGIC);
    let zero = _mm_setzero_ps();

    let mut cell_idx = [0u32; SCALAR_CHUNK];
    for chunk in xs.chunks_mut(SCALAR_CHUNK) {
        let n4 = chunk.len() & !3;
        let mut i = 0;
        while i < n4 {
            let x = _mm_loadu_ps(chunk.as_ptr().add(i));
            let t = _mm_mul_ps(_mm_sub_ps(x, lo), inv_w);
            // `max_ps(t, zero)`: NaN t → zero, matching scalar f32::max.
            let t = _mm_min_ps(_mm_max_ps(t, zero), mask_f);
            let c = _mm_and_si128(_mm_castps_si128(_mm_add_ps(t, magic)), mask_i);
            _mm_storeu_si128(cell_idx.as_mut_ptr().add(i) as *mut __m128i, c);
            i += 4;
        }
        for (slot, &x) in cell_idx[n4..chunk.len()].iter_mut().zip(chunk[n4..].iter()) {
            let t = ((x - lut.grid.lo) * lut.grid.inv_w)
                .max(0.0)
                .min(mask as f32);
            *slot = (t + MANTISSA_MAGIC).to_bits() & mask;
        }
        match &lut.fused {
            Some(fused) => gather_chunk_fused(fused, chunk, &cell_idx),
            None => gather_chunk_general(
                &lut.grid.cells,
                &lut.padded_breakpoints,
                &lut.params,
                lut.scan_len as usize,
                chunk,
                &cell_idx,
            ),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn detect_is_stable_and_named() {
        let a = detect();
        let b = detect();
        assert_eq!(a, b, "detection must be deterministic");
        assert!(["scalar", "sse2", "avx2"].contains(&a.name()));
    }

    #[test]
    fn level_ordering_matches_strength() {
        assert!(SimdLevel::Scalar < SimdLevel::Sse2);
        assert!(SimdLevel::Sse2 < SimdLevel::Avx2);
    }

    #[cfg(all(feature = "simd", target_arch = "x86_64"))]
    #[test]
    fn x86_64_floor_is_sse2() {
        assert!(
            detect() >= SimdLevel::Sse2,
            "SSE2 is the x86-64 baseline; detect() must not fall to scalar"
        );
    }
}
