//! Offline stand-in for the `proptest` crate.
//!
//! Implements the subset of the proptest 1.x API this workspace uses —
//! range/tuple/vec strategies, `prop_filter_map`, the `proptest!` macro and
//! `prop_assert*` — over the vendored `rand` generator. Differences from
//! the real crate: no shrinking (a failing case reports its seed and the
//! formatted assertion instead of a minimal counterexample) and no
//! persisted regression files.

use rand::rngs::StdRng;
use rand::SeedableRng;

pub mod strategy {
    use rand::{Rng, RngCore};

    /// A generator of random values of one type.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Draws one value.
        fn generate<R: RngCore>(&self, rng: &mut R) -> Self::Value;

        /// Keeps only values `f` maps to `Some`, unwrapping the mapping.
        fn prop_filter_map<O, F>(self, whence: &'static str, f: F) -> FilterMap<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> Option<O>,
        {
            FilterMap {
                inner: self,
                f,
                whence,
            }
        }

        /// Maps generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }
    }

    /// See [`Strategy::prop_filter_map`].
    #[derive(Debug, Clone)]
    pub struct FilterMap<S, F> {
        inner: S,
        f: F,
        whence: &'static str,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> Option<O>> Strategy for FilterMap<S, F> {
        type Value = O;

        fn generate<R: RngCore>(&self, rng: &mut R) -> O {
            for _ in 0..10_000 {
                if let Some(v) = (self.f)(self.inner.generate(rng)) {
                    return v;
                }
            }
            panic!("prop_filter_map exhausted retries: {}", self.whence);
        }
    }

    /// See [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;

        fn generate<R: RngCore>(&self, rng: &mut R) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// A strategy that always yields a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn generate<R: RngCore>(&self, _rng: &mut R) -> T {
            self.0.clone()
        }
    }

    macro_rules! range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn generate<R: RngCore>(&self, rng: &mut R) -> $t {
                    rng.gen_range(self.clone())
                }
            }
            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate<R: RngCore>(&self, rng: &mut R) -> $t {
                    rng.gen_range(self.clone())
                }
            }
        )*};
    }

    range_strategy!(usize, u64, u32, u16, u8, isize, i64, i32, i16, i8, f32, f64);

    macro_rules! tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn generate<R: RngCore>(&self, rng: &mut R) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        };
    }

    tuple_strategy!(A);
    tuple_strategy!(A, B);
    tuple_strategy!(A, B, C);
    tuple_strategy!(A, B, C, D);
}

pub mod collection {
    use super::strategy::Strategy;
    use rand::{Rng, RngCore};

    /// A strategy for `Vec`s with random length and random elements.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        len: std::ops::Range<usize>,
    }

    /// Generates vectors whose length is drawn from `len` and whose
    /// elements are drawn from `element`.
    pub fn vec<S: Strategy>(element: S, len: std::ops::Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate<R: RngCore>(&self, rng: &mut R) -> Vec<S::Value> {
            let n = if self.len.start + 1 == self.len.end {
                self.len.start
            } else {
                rng.gen_range(self.len.clone())
            };
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod test_runner {
    /// Why a single test case failed.
    #[derive(Debug, Clone)]
    pub struct TestCaseError(pub String);

    impl TestCaseError {
        /// Creates a failure with a formatted reason.
        pub fn fail(reason: String) -> Self {
            Self(reason)
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str(&self.0)
        }
    }

    /// Runner configuration (subset of the real `ProptestConfig`).
    #[derive(Debug, Clone)]
    pub struct Config {
        /// Number of random cases each property runs.
        pub cases: u32,
    }

    impl Config {
        /// A config running `cases` random cases.
        pub fn with_cases(cases: u32) -> Self {
            Self { cases }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            Self { cases: 256 }
        }
    }
}

/// Runs one property: `cases` random draws of `gen`, failing fast with the
/// case index and seed so a failure is reproducible (no shrinking).
pub fn run_property<G, B>(name: &str, cases: u32, gen: G, body: B)
where
    G: Fn(&mut StdRng) -> Result<(), test_runner::TestCaseError>,
    B: Fn(),
{
    let _ = body; // placeholder to keep the signature extensible
                  // Derive a per-property seed from the name so properties are decorrelated
                  // but every run of the binary is deterministic.
    let seed = name.bytes().fold(0xcbf2_9ce4_8422_2325u64, |h, b| {
        (h ^ b as u64).wrapping_mul(0x1000_0000_01b3)
    });
    let mut rng = StdRng::seed_from_u64(seed);
    for case in 0..cases {
        if let Err(e) = gen(&mut rng) {
            panic!("proptest property '{name}' failed at case {case} (seed {seed:#x}): {e}");
        }
    }
}

pub mod prelude {
    pub use crate::collection;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{Config as ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// The property-test macro: each `#[test] fn name(arg in strategy, ...)`
/// item becomes a normal test running the body over random draws.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { cfg = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! {
            cfg = $crate::test_runner::Config::default();
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (cfg = $cfg:expr;) => {};
    (cfg = $cfg:expr;
     $(#[$meta:meta])*
     fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config = $cfg;
            $crate::run_property(
                stringify!($name),
                config.cases,
                |__rng| {
                    $(let $arg = $crate::strategy::Strategy::generate(&($strat), __rng);)+
                    #[allow(clippy::redundant_closure_call)]
                    (move || -> ::std::result::Result<(), $crate::test_runner::TestCaseError> {
                        $body
                        Ok(())
                    })()
                },
                || {},
            );
        }
        $crate::__proptest_items! { cfg = $cfg; $($rest)* }
    };
}

/// Asserts a condition inside a `proptest!` body, failing the case (not
/// aborting the process) when false.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)*)),
            );
        }
    };
}

/// Equality counterpart of [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(
            a == b,
            "assertion failed: `{:?}` == `{:?}`",
            a,
            b
        );
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(
            a == b,
            "assertion failed: `{:?}` == `{:?}`: {}",
            a,
            b,
            format!($($fmt)+)
        );
    }};
}

/// Inequality counterpart of [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(
            a != b,
            "assertion failed: `{:?}` != `{:?}`",
            a,
            b
        );
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(
            a != b,
            "assertion failed: `{:?}` != `{:?}`: {}",
            a,
            b,
            format!($($fmt)+)
        );
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_stay_in_bounds(x in -5.0f32..5.0, n in 1usize..10) {
            prop_assert!((-5.0..5.0).contains(&x));
            prop_assert!((1..10).contains(&n));
        }

        #[test]
        fn vec_lengths_respect_bounds(v in collection::vec(0u64..100, 2..7)) {
            prop_assert!((2..7).contains(&v.len()));
            for e in v {
                prop_assert!(e < 100);
            }
        }

        #[test]
        fn filter_map_applies(x in (0u64..50).prop_filter_map("evens", |x| {
            if x % 2 == 0 { Some(x / 2) } else { None }
        })) {
            prop_assert!(x < 25);
        }
    }

    #[test]
    #[should_panic(expected = "failed at case")]
    fn failing_property_panics_with_case_info() {
        crate::run_property(
            "always_fails",
            4,
            |_rng| Err(crate::test_runner::TestCaseError::fail("nope".into())),
            || {},
        );
    }
}
