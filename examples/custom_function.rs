//! NN-LUT as a *universal* approximator: the same pipeline handles any
//! scalar non-linearity — here the extension targets listed on the paper's
//! Fig. 3(a) hardware block (swish, h-swish, tanh, sigmoid, erf), plus a
//! fully custom function supplied as a closure.
//!
//! Run: `cargo run --release --example custom_function`

use nn_lut::core::convert::nn_to_lut;
use nn_lut::core::funcs::TargetFunction;
use nn_lut::core::init::InitStrategy;
use nn_lut::core::metrics::mean_abs_error;
use nn_lut::core::recipe::{recipe_for, train_recipe};
use nn_lut::core::train::{train, Dataset, SamplingMode, TrainConfig};

fn main() {
    // The built-in extension targets: one call each.
    println!("built-in extension targets (16-entry LUTs, paper training config):");
    println!("{:<10}{:>14}", "function", "L1 error");
    for func in [
        TargetFunction::Swish,
        TargetFunction::HSwish,
        TargetFunction::Tanh,
        TargetFunction::Sigmoid,
        TargetFunction::Erf,
    ] {
        let recipe = recipe_for(func);
        let (net, _) = train_recipe(&recipe, 16, &TrainConfig::paper(), 5);
        let lut = nn_to_lut(&net);
        let err = mean_abs_error(|x| lut.eval(x), |x| func.eval(x), recipe.domain, 8000);
        println!("{:<10}{err:>14.6}", func.name());
    }

    // A fully custom function: the Mish activation, x·tanh(ln(1 + e^x)).
    println!("\ncustom function: mish(x) = x * tanh(softplus(x)) on (-6, 6)");
    let mish = |x: f32| x * ((1.0 + (x as f64).exp()).ln() as f32).tanh();
    let domain = (-6.0f32, 6.0f32);
    let data = Dataset::generate(mish, domain, 100_000, SamplingMode::Uniform, false, 1)
        .expect("valid domain");
    let mut net = nn_lut::core::init::init_for_seed(InitStrategy::random(), 15, false, 2);
    let report = train(&mut net, &data, &TrainConfig::paper(), 3);
    let net = net.denormalized(domain.0, domain.1);
    let lut = nn_to_lut(&net);
    let err = mean_abs_error(|x| lut.eval(x), mish, domain, 8000);
    println!(
        "training loss {:.6} -> {:.6}; deployed LUT L1 error {err:.6}",
        report.initial_loss, report.final_loss
    );

    println!("\nsample points:");
    for x in [-4.0f32, -1.0, 0.0, 1.0, 4.0] {
        println!(
            "  mish({x:>5.1}) exact {:>8.4}   nn-lut {:>8.4}",
            mish(x),
            lut.eval(x)
        );
    }

    println!("\nSame 16-entry hardware, five different activation functions —");
    println!("only the table contents change (the paper's key deployment story).");
}
