//! The asynchronous serving front door.
//!
//! [`AsyncLutServer`] decouples admission from execution: `submit` returns
//! a [`Ticket`] immediately, and a dedicated background **dispatcher**
//! thread drains the length-bucketed [`Batcher`] as batches close. A batch
//! closes when the **first** of three conditions fires:
//!
//! 1. **area budget** — a bucket can fill the
//!    [`BatchPolicy`] sequence/padded-area budget
//!    ([`CloseReason::Full`]);
//! 2. **batch age** — the oldest queued request has waited
//!    [`ClosePolicy::max_batch_age`] ([`CloseReason::Aged`]);
//! 3. **deadline pressure** — a queued request's deadline is within
//!    [`ClosePolicy::deadline_slack`] ([`CloseReason::Deadline`]).
//!
//! Requests whose deadline passes while still queued are never encoded:
//! their tickets resolve to [`ServeError::DeadlineExceeded`] and the miss
//! is counted in the metrics. Deadlines shape *when* batches close, never
//! the packing order — admission stays FIFO within a bucket, so the
//! determinism story of the synchronous server carries over unchanged
//! (and with an FP32/FP16 body the responses are bit-identical to a
//! serial, unbatched server; `tests/serve_async.rs` proves it).
//!
//! # Backpressure
//!
//! Admission is bounded by [`ServePolicy`]: a submission that would push
//! the queue past its depth or queued-area watermark is **rejected at the
//! door** — its ticket resolves immediately to [`ServeError::Overloaded`],
//! the rejection is counted in the metrics, and every already-queued
//! request is untouched (newest-arrival-first rejection keeps FIFO
//! fairness). Once the dispatcher drains the queue back under the
//! watermark, new submissions are admitted again.
//!
//! # Multiple batches in flight
//!
//! With [`AsyncServerConfig::max_in_flight`] > 1 the dispatcher hands
//! closed batches to that many **encoder threads** (each with its own
//! [`ThreadPool`]), so batch *k+1* encodes while *k* is still running.
//! Batch *composition* stays a pure function of queue contents at close
//! time — only the dispatcher, under the shared lock, ever packs a batch.
//! Completions flow through an **ordered completion queue**: results are
//! recorded and tickets resolved strictly in dispatch order, so a fast
//! batch never overtakes a slow earlier one observably, and the
//! bit-identical-to-serial contract is unchanged (mask-aware attention
//! makes each response independent of batch composition; see
//! `docs/ARCHITECTURE.md`).
//!
//! Dropping the server (or calling [`AsyncLutServer::shutdown`]) flushes:
//! the dispatcher drains every queued request and waits out every
//! in-flight batch before exiting, so no ticket is left unresolved.
//!
//! # Continuous batching
//!
//! [`AsyncLutServer::submit_generate`] admits an autoregressive
//! generation. Its prompt enters the length-bucketed queue as a
//! **prefill**; once prefilled (KV cache populated, first token read
//! greedily), the sequence rejoins the batcher's **decode plane** after
//! every emitted token, so many generations advance one token per batch
//! while prefills keep streaming in. The dispatcher mixes wide decode
//! batches with prefill/encode batches under the same padded-area
//! budget: decode-priority closes keep inter-token latency flat, and
//! [`ClosePolicy::max_prefill_wait`] bounds how long a queued prefill
//! can be deferred (the starvation guard). Tokens stream to the caller
//! through a [`GenerateTicket`] as each step resolves; a deadline covers
//! the **whole** generation (a lapsed deadline culls the sequence from
//! whichever plane holds it and frees its KV cache), shutdown *finishes*
//! in-flight generations (the token budget bounds the drain), and a
//! panic mid-step fails the generation with [`ServeError::ServerFailed`]
//! — its cache is lost, and the sharded layer rebuilds it on a healthy
//! replica by re-prefilling the prompt plus the tokens already emitted.
//!
//! Because every decode step is row-local in the token dimension
//! (masked attention over a per-sequence cache, per-row quantization on
//! the INT8 paths), a continuously-batched generation is **bit-identical
//! to serial step-at-a-time decoding** at all three precisions, any
//! thread count and any in-flight depth — `tests/serve_decode.rs` pins
//! the claim.

use std::collections::{BTreeMap, HashMap, VecDeque};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use nnlut_core::NnLutKit;
use nnlut_tensor::Matrix;
use nnlut_transformer::{
    BertModel, KvCache, MatmulMode, Nonlinearity, PaddedBatch, TransformerConfig,
};

use crate::batcher::{
    BatchPolicy, Batcher, ClosePolicy, CloseReason, CloseTarget, ClosedBatch, ClosedDecodeBatch,
    ServePolicy,
};
use crate::fault::FaultInjector;
use crate::metrics::{BatchRecord, ServeMetrics, DEFAULT_SKETCH_CAPACITY};
use crate::pool::ThreadPool;
use crate::server::{validate_request, EncodeResponse, RequestId};
use crate::trace::{FlightRecorder, RequestTrace, Stage, TraceBreakdown, TraceConfig};

/// Why an asynchronous request failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServeError {
    /// The request's deadline passed while it was still queued; it was
    /// culled without being encoded.
    DeadlineExceeded {
        /// The request's id.
        id: RequestId,
        /// How long it waited before expiring.
        waited: Duration,
    },
    /// The queue was at its [`ServePolicy`] watermark when the request
    /// arrived; it was rejected at the door, never queued, never encoded.
    /// Back off and resubmit — already-queued requests are unaffected.
    Overloaded {
        /// The request's id.
        id: RequestId,
        /// Queue depth at rejection time (at or above the watermark).
        queue_depth: usize,
    },
    /// The worker failed (a panic escaped the encode path) before this
    /// request could complete. The server stays up; the request was not
    /// encoded.
    ServerFailed {
        /// The request's id.
        id: RequestId,
    },
    /// [`Ticket::wait_timeout`] gave up before the worker resolved the
    /// ticket. The request itself is **still in flight** — this bounds
    /// the caller's blocking, it does not cancel the work.
    WaitTimeout {
        /// The request's id.
        id: RequestId,
        /// How long the caller waited before giving up.
        waited: Duration,
        /// The request's last recorded lifecycle stage at timeout —
        /// how far it got (`None` if nothing was recorded yet).
        last_stage: Option<Stage>,
    },
    /// Every attempt within the sharded retry budget failed (replica
    /// panics, stalls or admission bounces on each try). The request was
    /// never successfully encoded.
    RetriesExhausted {
        /// The request's id.
        id: RequestId,
        /// Attempts made (initial route + retries).
        attempts: u32,
    },
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::DeadlineExceeded { id, waited } => write!(
                f,
                "request {id} missed its deadline after waiting {:.2} ms",
                waited.as_secs_f64() * 1e3
            ),
            ServeError::Overloaded { id, queue_depth } => write!(
                f,
                "request {id} rejected at the door: queue at watermark (depth {queue_depth})"
            ),
            ServeError::ServerFailed { id } => {
                write!(f, "the serving worker failed before request {id} completed")
            }
            ServeError::WaitTimeout {
                id,
                waited,
                last_stage,
            } => write!(
                f,
                "gave up waiting on request {id} after {:.2} ms (request still in flight, last stage: {})",
                waited.as_secs_f64() * 1e3,
                last_stage.map_or("none recorded", |s| s.as_str()),
            ),
            ServeError::RetriesExhausted { id, attempts } => write!(
                f,
                "request {id} failed on all {attempts} attempts (retry budget exhausted)"
            ),
        }
    }
}

impl std::error::Error for ServeError {}

/// Locks a mutex, recovering from poisoning: every critical section here
/// either mutates nothing before its last fallible statement or leaves
/// the state consistent, so a panicked peer (e.g. a doorstep validation
/// failure) must not abort the worker or the destructor.
pub(crate) fn lock<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    mutex.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Construction knobs for the asynchronous front door.
#[derive(Debug, Clone)]
pub struct AsyncServerConfig {
    /// Worker threads in each encode pool (`1` = serial reference path).
    pub threads: usize,
    /// Dynamic batching policy (area budget + length buckets).
    pub policy: BatchPolicy,
    /// When under-filled batches close anyway.
    pub close: ClosePolicy,
    /// Admission watermarks — reject-at-door backpressure. Default:
    /// unbounded (no behavior change until you opt in).
    pub admission: ServePolicy,
    /// Batches that may encode concurrently (`0` is clamped to `1`).
    /// Each in-flight slot is one encoder thread with its own
    /// [`ThreadPool`] of [`AsyncServerConfig::threads`] lanes, so total
    /// encode threads = `max_in_flight × threads`.
    pub max_in_flight: usize,
    /// Retention of each metrics percentile sketch (the metrics memory
    /// bound; see [`ServeMetrics::sketch_capacity`]).
    pub sketch_capacity: usize,
    /// GEMM precision of the transformer body.
    pub mode: MatmulMode,
    /// Deterministic fault injection hook, consulted by the encoder
    /// threads just before each batch encode (inside the per-batch panic
    /// containment). `None` — the default — injects nothing; production
    /// configs never set this. See [`crate::fault`].
    pub fault: Option<FaultInjector>,
    /// Tracing configuration. Per-request lifecycle traces are always on
    /// (part of the [`Ticket`] contract); this governs the flight
    /// recorder. Default: [`TraceConfig::from_env`] (`NNLUT_TRACE=1`).
    pub trace: TraceConfig,
    /// An externally-owned flight recorder to journal into (how the
    /// sharded layer shares one ring across every replica). `None` with
    /// `trace.recorder` set builds a private recorder; `None` without it
    /// journals nothing.
    pub recorder: Option<Arc<FlightRecorder>>,
    /// Replica id stamped on this server's trace events and journal
    /// entries (set by the sharded layer; `None` standalone).
    pub replica_label: Option<usize>,
}

impl Default for AsyncServerConfig {
    fn default() -> Self {
        Self {
            threads: 1,
            policy: BatchPolicy::default_policy(),
            close: ClosePolicy::default_policy(),
            admission: ServePolicy::unbounded(),
            max_in_flight: 1,
            sketch_capacity: DEFAULT_SKETCH_CAPACITY,
            mode: MatmulMode::F32,
            fault: None,
            trace: TraceConfig::from_env(),
            recorder: None,
            replica_label: None,
        }
    }
}

/// A pending response slot shared between the submitter and the worker
/// (and, in the sharded layer, between the shard door and its
/// supervisor).
#[derive(Debug)]
pub(crate) struct TicketState {
    slot: Mutex<Option<Result<EncodeResponse, ServeError>>>,
    ready: Condvar,
    /// The request's lifecycle journal, shared with every writer along
    /// the request path (and, in the sharded layer, across failover
    /// attempts — one trace per *request*, not per replica submission).
    pub(crate) trace: Arc<RequestTrace>,
}

impl TicketState {
    pub(crate) fn new(trace: Arc<RequestTrace>) -> Self {
        Self {
            slot: Mutex::new(None),
            ready: Condvar::new(),
            trace,
        }
    }

    pub(crate) fn resolve(&self, result: Result<EncodeResponse, ServeError>) {
        let mut slot = lock(&self.slot);
        debug_assert!(slot.is_none(), "ticket resolved twice");
        *slot = Some(result);
        self.ready.notify_all();
    }
}

/// Handle to one in-flight asynchronous request, resolved by the worker
/// on completion (or expiry/rejection). Obtained from
/// [`AsyncLutServer::submit`].
#[derive(Debug)]
pub struct Ticket {
    id: RequestId,
    state: Arc<TicketState>,
}

impl Ticket {
    /// Builds a ticket over an externally-owned state slot (the sharded
    /// layer resolves shard tickets from its supervisor).
    pub(crate) fn from_state(id: RequestId, state: Arc<TicketState>) -> Self {
        Self { id, state }
    }

    /// The request id this ticket tracks.
    pub fn id(&self) -> RequestId {
        self.id
    }

    /// The request's lifecycle trace — live while the request is in
    /// flight, final once the ticket resolves.
    pub fn trace(&self) -> &RequestTrace {
        &self.state.trace
    }

    /// A shared handle to the same trace that survives [`Ticket::wait`]
    /// (which consumes the ticket) — grab it before waiting to read the
    /// final breakdown afterwards.
    pub fn trace_handle(&self) -> Arc<RequestTrace> {
        Arc::clone(&self.state.trace)
    }

    /// The request's per-stage latency breakdown so far (final once the
    /// ticket resolves; see [`RequestTrace::breakdown`]).
    pub fn breakdown(&self) -> TraceBreakdown {
        self.state.trace.breakdown()
    }

    /// The request's most recently recorded lifecycle stage.
    pub fn last_stage(&self) -> Option<Stage> {
        self.state.trace.last_stage()
    }

    /// True once the worker has resolved this ticket ([`Ticket::wait`]
    /// will not block).
    pub fn is_ready(&self) -> bool {
        lock(&self.state.slot).is_some()
    }

    /// Blocks until the request completes, expires, or is rejected.
    /// Never hangs: every ticket is resolved — on completion (`Ok`),
    /// deadline expiry ([`ServeError::DeadlineExceeded`]), overload
    /// rejection ([`ServeError::Overloaded`], already resolved when
    /// `submit` returned), and even a worker failure
    /// ([`ServeError::ServerFailed`], from the per-batch panic
    /// containment or the shutdown sweep).
    pub fn wait(self) -> Result<EncodeResponse, ServeError> {
        let mut slot = lock(&self.state.slot);
        loop {
            if let Some(result) = slot.take() {
                return result;
            }
            slot = self
                .state
                .ready
                .wait(slot)
                .unwrap_or_else(PoisonError::into_inner);
        }
    }

    /// Like [`Ticket::wait`], but gives up after `timeout` with
    /// [`ServeError::WaitTimeout`] instead of blocking forever on a lost
    /// response. The timeout bounds only the *caller's* blocking — the
    /// request stays in flight and its eventual result is discarded, so
    /// the no-abandoned-ticket guarantee is unaffected.
    pub fn wait_timeout(self, timeout: Duration) -> Result<EncodeResponse, ServeError> {
        let start = Instant::now();
        let deadline = start + timeout;
        let mut slot = lock(&self.state.slot);
        loop {
            if let Some(result) = slot.take() {
                return result;
            }
            let now = Instant::now();
            if now >= deadline {
                return Err(ServeError::WaitTimeout {
                    id: self.id,
                    waited: now.saturating_duration_since(start),
                    last_stage: self.state.trace.last_stage(),
                });
            }
            slot = self
                .state
                .ready
                .wait_timeout(slot, deadline.saturating_duration_since(now))
                .unwrap_or_else(PoisonError::into_inner)
                .0;
        }
    }
}

/// The streaming inner state of one generation: tokens appended as the
/// worker emits them, plus the terminal outcome slot.
#[derive(Debug)]
struct GenInner {
    tokens: Vec<usize>,
    done: Option<Result<(), ServeError>>,
}

/// A pending generation's streaming slot, shared between the submitter's
/// [`GenerateTicket`] and the worker (and, in the sharded layer, read by
/// the supervisor to harvest tokens across failover attempts).
#[derive(Debug)]
pub(crate) struct GenTicketState {
    inner: Mutex<GenInner>,
    ready: Condvar,
    /// The generation's lifecycle journal — one trace per *request*,
    /// accumulating `decoded` events across every step (and, sharded,
    /// across failover attempts).
    pub(crate) trace: Arc<RequestTrace>,
}

impl GenTicketState {
    pub(crate) fn new(trace: Arc<RequestTrace>) -> Self {
        Self {
            inner: Mutex::new(GenInner {
                tokens: Vec::new(),
                done: None,
            }),
            ready: Condvar::new(),
            trace,
        }
    }

    /// Appends one emitted token and wakes streaming readers.
    pub(crate) fn push_token(&self, token: usize) {
        let mut inner = lock(&self.inner);
        debug_assert!(inner.done.is_none(), "token emitted after completion");
        inner.tokens.push(token);
        self.ready.notify_all();
    }

    /// Terminates the stream. Exactly-once per generation.
    pub(crate) fn finish(&self, result: Result<(), ServeError>) {
        let mut inner = lock(&self.inner);
        debug_assert!(inner.done.is_none(), "generation finished twice");
        inner.done = Some(result);
        self.ready.notify_all();
    }

    /// Tokens emitted at or past `cursor`, plus the terminal outcome if
    /// the stream has ended — the sharded supervisor's non-blocking
    /// harvest (failover needs the emitted prefix to rebuild the cache).
    pub(crate) fn snapshot_from(
        &self,
        cursor: usize,
    ) -> (Vec<usize>, Option<Result<(), ServeError>>) {
        let inner = lock(&self.inner);
        let fresh = inner.tokens.get(cursor..).unwrap_or_default().to_vec();
        (fresh, inner.done.clone())
    }
}

/// A completed generation: the full emitted token sequence.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GenerateResponse {
    /// The generation request's id.
    pub id: RequestId,
    /// Every generated token, in emission order (never the prompt).
    pub tokens: Vec<usize>,
}

/// Handle to one in-flight generation, streaming tokens as the worker
/// resolves each decode step. Obtained from
/// [`AsyncLutServer::submit_generate`].
///
/// Consume it either as a stream ([`GenerateTicket::next`] per token) or
/// in one blocking call ([`GenerateTicket::wait`] for the whole
/// sequence). Like [`Ticket`], every generation resolves — completion,
/// deadline expiry, overload rejection or worker failure — so neither
/// call can hang.
#[derive(Debug)]
pub struct GenerateTicket {
    id: RequestId,
    state: Arc<GenTicketState>,
    /// Tokens already yielded through [`GenerateTicket::next`].
    cursor: usize,
    /// The terminal error was already yielded; the stream is exhausted.
    error_yielded: bool,
}

impl GenerateTicket {
    pub(crate) fn from_state(id: RequestId, state: Arc<GenTicketState>) -> Self {
        Self {
            id,
            state,
            cursor: 0,
            error_yielded: false,
        }
    }

    /// The shared stream state — the sharded supervisor harvests a
    /// replica attempt's tokens through this handle (via
    /// [`GenTicketState::snapshot_from`]) without consuming the ticket.
    pub(crate) fn state_handle(&self) -> Arc<GenTicketState> {
        Arc::clone(&self.state)
    }

    /// The generation request's id.
    pub fn id(&self) -> RequestId {
        self.id
    }

    /// The generation's lifecycle trace (`decoded` events accumulate as
    /// tokens resolve).
    pub fn trace(&self) -> &RequestTrace {
        &self.state.trace
    }

    /// A shared handle to the trace that survives [`GenerateTicket::wait`].
    pub fn trace_handle(&self) -> Arc<RequestTrace> {
        Arc::clone(&self.state.trace)
    }

    /// The generation's per-stage latency breakdown so far.
    pub fn breakdown(&self) -> TraceBreakdown {
        self.state.trace.breakdown()
    }

    /// The most recently recorded lifecycle stage.
    pub fn last_stage(&self) -> Option<Stage> {
        self.state.trace.last_stage()
    }

    /// True once the generation has terminated (successfully or not);
    /// [`GenerateTicket::wait`] will not block.
    pub fn is_done(&self) -> bool {
        lock(&self.state.inner).done.is_some()
    }

    /// Tokens emitted so far (a snapshot; the stream may still be live).
    pub fn tokens_so_far(&self) -> Vec<usize> {
        lock(&self.state.inner).tokens.clone()
    }

    /// Blocks until the generation terminates and returns the full token
    /// sequence (or the terminal error — tokens emitted before a failure
    /// are observable through [`GenerateTicket::next`] /
    /// [`GenerateTicket::tokens_so_far`] before waiting).
    pub fn wait(self) -> Result<GenerateResponse, ServeError> {
        let mut inner = lock(&self.state.inner);
        loop {
            if let Some(done) = &inner.done {
                return match done {
                    Ok(()) => Ok(GenerateResponse {
                        id: self.id,
                        tokens: inner.tokens.clone(),
                    }),
                    Err(e) => Err(e.clone()),
                };
            }
            inner = self
                .state
                .ready
                .wait(inner)
                .unwrap_or_else(PoisonError::into_inner);
        }
    }

    /// Like [`GenerateTicket::wait`], but gives up after `timeout` with
    /// [`ServeError::WaitTimeout`]. Bounds only the caller's blocking —
    /// the generation stays in flight and still resolves.
    pub fn wait_timeout(self, timeout: Duration) -> Result<GenerateResponse, ServeError> {
        let start = Instant::now();
        let deadline = start + timeout;
        let mut inner = lock(&self.state.inner);
        loop {
            if let Some(done) = &inner.done {
                return match done {
                    Ok(()) => Ok(GenerateResponse {
                        id: self.id,
                        tokens: inner.tokens.clone(),
                    }),
                    Err(e) => Err(e.clone()),
                };
            }
            let now = Instant::now();
            if now >= deadline {
                return Err(ServeError::WaitTimeout {
                    id: self.id,
                    waited: now.saturating_duration_since(start),
                    last_stage: self.state.trace.last_stage(),
                });
            }
            inner = self
                .state
                .ready
                .wait_timeout(inner, deadline.saturating_duration_since(now))
                .unwrap_or_else(PoisonError::into_inner)
                .0;
        }
    }
}

/// Blocking token stream: each `next` call blocks for the next token.
/// Yields `Some(Ok(token))` per emitted token in order; after the last
/// token of a successful generation, `None`. A failed generation yields
/// its tokens, then the error once (`Some(Err(_))`), then `None`.
impl Iterator for GenerateTicket {
    type Item = Result<usize, ServeError>;

    fn next(&mut self) -> Option<Self::Item> {
        let mut inner = lock(&self.state.inner);
        loop {
            if self.cursor < inner.tokens.len() {
                let token = inner.tokens[self.cursor];
                self.cursor += 1;
                return Some(Ok(token));
            }
            match &inner.done {
                Some(Ok(())) => return None,
                Some(Err(e)) => {
                    if self.error_yielded {
                        return None;
                    }
                    self.error_yielded = true;
                    return Some(Err(e.clone()));
                }
                None => {
                    inner = self
                        .state
                        .ready
                        .wait(inner)
                        .unwrap_or_else(PoisonError::into_inner);
                }
            }
        }
    }
}

/// Worker-side bookkeeping of one live generation. The KV cache parks
/// here between steps and **moves into the decode job** while a step is
/// in flight — one step per sequence at a time, by construction.
#[derive(Debug)]
struct GenState {
    /// Tokens emitted so far.
    emitted: usize,
    /// Total tokens to generate.
    max_new: usize,
    /// The sequence's KV cache; `None` while a step is in flight.
    cache: Option<KvCache>,
    /// Token the next decode step feeds (the last emitted token).
    next_token: usize,
    /// Absolute deadline for the whole generation, if any.
    deadline: Option<Instant>,
    /// The streaming slot tokens are pushed into.
    ticket: Arc<GenTicketState>,
    /// When the previous token was emitted (inter-token gap metrics).
    last_emit: Option<Instant>,
}

/// What a dispatched batch actually runs: a length-bucket batch (pure
/// encodes, or encodes mixed with generation prefills) or a decode-plane
/// batch advancing many generations one token each.
#[derive(Debug)]
enum JobWork {
    /// A closed length-bucket batch. `is_gen[i]` marks member `i` as a
    /// generation prefill (its id lives in the `gens` map, not the
    /// ticket map).
    Bucket {
        closed: ClosedBatch,
        is_gen: Vec<bool>,
    },
    /// A closed decode batch: each member's cache and input token, moved
    /// out of its [`GenState`] for the duration of the step.
    Decode {
        closed: ClosedDecodeBatch,
        steps: Vec<(KvCache, usize)>,
    },
}

/// Per-member result of a bucket batch.
#[derive(Debug)]
enum MemberResult {
    /// An encode member's hidden states.
    Encoded(Matrix),
    /// A generation prefill: populated cache + greedily-read first token.
    Prefilled { cache: KvCache, token: usize },
}

/// The outcome side of [`JobWork`], parked in the ordered completion
/// queue. `Err(())` = the encode panicked (contained); members fail (a
/// decode batch's caches are lost in the unwind — the generation cannot
/// continue here; the sharded layer rebuilds).
#[derive(Debug)]
enum DoneWork {
    Bucket {
        closed: ClosedBatch,
        outcome: Result<Vec<MemberResult>, ()>,
    },
    Decode {
        closed: ClosedDecodeBatch,
        outcome: Result<Vec<(KvCache, usize)>, ()>,
    },
}

/// One closed batch on its way to an encoder thread.
#[derive(Debug)]
struct EncodeJob {
    /// Dispatch sequence number — the ordered-completion key.
    seq: u64,
    work: JobWork,
    /// Queue depth at close time (metrics bookkeeping).
    depth: usize,
    /// Member traces, parallel to the work's member ids, cloned under
    /// the lock at dispatch so the encoder records `Encoded` without
    /// touching the ticket map.
    traces: Vec<Arc<RequestTrace>>,
}

/// One encoded batch waiting in the ordered completion queue.
#[derive(Debug)]
struct Completion {
    work: DoneWork,
    depth: usize,
    latency: Duration,
    /// Member traces, parallel to the work's member ids.
    traces: Vec<Arc<RequestTrace>>,
}

/// Everything the submitter side, the dispatcher and the encoder threads
/// share, behind one lock.
#[derive(Debug)]
struct State {
    batcher: Batcher,
    tickets: HashMap<RequestId, Arc<TicketState>>,
    /// Live generations, keyed by request id. Insertion at
    /// `submit_generate`; removal on completion, expiry or failure — and
    /// removal drops the KV cache, so "no residual allocation after
    /// eviction" is structural.
    gens: HashMap<RequestId, GenState>,
    metrics: ServeMetrics,
    next_id: RequestId,
    shutdown: bool,
    /// Closed batches awaiting an encoder, in dispatch order.
    encode_queue: VecDeque<EncodeJob>,
    /// Batches dispatched but not yet resolved (queued-for-encode,
    /// encoding, or parked in `completions` behind an earlier batch).
    in_flight: usize,
    /// Next dispatch sequence number.
    next_seq: u64,
    /// Sequence number the ordered resolver will resolve next.
    next_resolve: u64,
    /// Out-of-order completions parked until their turn.
    completions: BTreeMap<u64, Completion>,
    /// Tells idle encoder threads to exit (set once, at the end of the
    /// shutdown drain).
    encoders_exit: bool,
}

#[derive(Debug)]
struct Shared {
    state: Mutex<State>,
    /// Signalled on new arrivals, on shutdown, and whenever a completion
    /// frees an in-flight slot — everything the dispatcher sleeps on.
    work: Condvar,
    /// Signalled when a job lands in `encode_queue` (and at
    /// `encoders_exit`) — everything the encoder threads sleep on.
    encode: Condvar,
}

/// The asynchronous, deadline-aware batching server over the baked LUT
/// engines.
///
/// # Examples
///
/// ```
/// use nnlut_core::{train::TrainConfig, NnLutKit};
/// use nnlut_serve::{AsyncLutServer, AsyncServerConfig, ServePolicy};
/// use nnlut_transformer::{BertModel, TransformerConfig};
/// use std::time::Duration;
///
/// let model = BertModel::new_synthetic(TransformerConfig::roberta_tiny(), 3);
/// let kit = NnLutKit::train_with(16, 3, &TrainConfig::fast());
/// let server = AsyncLutServer::new(model, kit, AsyncServerConfig {
///     max_in_flight: 2,                                   // overlap encodes
///     admission: ServePolicy::with_max_queue_depth(1024), // reject-at-door
///     ..AsyncServerConfig::default()
/// });
///
/// // Tickets resolve in the background; wait() blocks until done.
/// let a = server.submit(vec![1, 2, 3, 4]);
/// let b = server.submit_with_deadline(vec![5, 6], Some(Duration::from_secs(5)));
/// let hidden = a.wait().expect("no deadline, cannot expire");
/// assert_eq!(hidden.hidden.shape(), (4, 64));
/// assert_eq!(b.wait().expect("5 s is plenty").tokens, 2);
/// assert!(server.metrics().total_tokens() >= 6);
/// ```
#[derive(Debug)]
pub struct AsyncLutServer {
    shared: Arc<Shared>,
    /// Kept for door-step validation; the model itself lives on the worker.
    config: TransformerConfig,
    admission: ServePolicy,
    worker: Option<JoinHandle<()>>,
    /// The flight recorder this server journals into, if any.
    recorder: Option<Arc<FlightRecorder>>,
    /// Replica id stamped on trace events and journal entries.
    replica_label: Option<usize>,
}

impl AsyncLutServer {
    /// Builds the server and starts its background worker. The worker
    /// owns the model and the kit's baked engines ("Altogether"
    /// deployment, like [`LutServer::new`](crate::LutServer::new)).
    pub fn new(model: BertModel, kit: NnLutKit, config: AsyncServerConfig) -> Self {
        Self::with_backend(model, Nonlinearity::all_lut(&kit), config)
    }

    /// Builds the server with an explicit per-site backend selection.
    pub fn with_backend(model: BertModel, nl: Nonlinearity, config: AsyncServerConfig) -> Self {
        Self::with_shared(Arc::new(model), Arc::new(nl), config)
    }

    /// Builds the server over **already-shared** model weights and
    /// backend. This is how the sharded layer keeps N replicas over one
    /// copy of the weights: every replica's encoder threads read the same
    /// `Arc`s, so replica count is a topology knob, not a memory
    /// multiplier.
    pub fn with_shared(
        model: Arc<BertModel>,
        nl: Arc<Nonlinearity>,
        config: AsyncServerConfig,
    ) -> Self {
        crate::check_codebook_mode(&model, config.mode);
        let model_config = model.config().clone();
        let shared = Arc::new(Shared {
            state: Mutex::new(State {
                batcher: Batcher::new(config.policy.clone()),
                tickets: HashMap::new(),
                gens: HashMap::new(),
                metrics: ServeMetrics::with_sketch_capacity(config.sketch_capacity),
                next_id: 0,
                shutdown: false,
                encode_queue: VecDeque::new(),
                in_flight: 0,
                next_seq: 0,
                next_resolve: 0,
                completions: BTreeMap::new(),
                encoders_exit: false,
            }),
            work: Condvar::new(),
            encode: Condvar::new(),
        });
        let worker_shared = Arc::clone(&shared);
        let close = config.close;
        let threads = config.threads;
        let max_in_flight = config.max_in_flight.max(1);
        let mode = config.mode;
        let admission = config.admission;
        let fault = config.fault;
        // A shared recorder wins; otherwise the trace config decides
        // whether this server runs a private one or journals nothing.
        let recorder = config.recorder.clone().or_else(|| {
            config
                .trace
                .recorder
                .then(|| Arc::new(FlightRecorder::new(config.trace.recorder_capacity)))
        });
        let replica_label = config.replica_label;
        let worker_recorder = recorder.clone();
        let worker = std::thread::Builder::new()
            .name("nnlut-serve-dispatch".into())
            .spawn(move || {
                dispatcher_loop(
                    worker_shared,
                    model,
                    nl,
                    mode,
                    threads,
                    close,
                    max_in_flight,
                    fault,
                    worker_recorder,
                    replica_label,
                )
            })
            .expect("spawn serving dispatcher");
        Self {
            shared,
            config: model_config,
            admission,
            worker: Some(worker),
            recorder,
            replica_label,
        }
    }

    /// The flight recorder this server journals into, if one is enabled
    /// (via [`AsyncServerConfig::recorder`] or `trace.recorder`).
    pub fn recorder(&self) -> Option<&Arc<FlightRecorder>> {
        self.recorder.as_ref()
    }

    /// Enqueues a request with no deadline. Returns immediately; the
    /// [`Ticket`] resolves when the batch it rides in completes (or
    /// immediately, to [`ServeError::Overloaded`], if the queue is at its
    /// backpressure watermark).
    ///
    /// # Panics
    ///
    /// Panics if the request is empty, overlong, out-of-vocabulary, or
    /// submitted after [`AsyncLutServer::shutdown`].
    pub fn submit(&self, tokens: Vec<usize>) -> Ticket {
        self.submit_with_deadline(tokens, None)
    }

    /// Enqueues a request whose **queue wait** is bounded by `deadline`
    /// (measured from now): a request still queued when its deadline
    /// passes is culled without being encoded and its ticket resolves to
    /// [`ServeError::DeadlineExceeded`]. A request *dispatched* before
    /// its deadline runs to completion — encode time is not bounded, so
    /// `wait()` can return `Ok` after the deadline on a slow batch;
    /// [`ClosePolicy::deadline_slack`] is the knob that leaves encode
    /// headroom. `None` means no deadline.
    ///
    /// If the queue is at its [`ServePolicy`] watermark the request is
    /// rejected at the door: the returned ticket is already resolved to
    /// [`ServeError::Overloaded`] and nothing was queued.
    ///
    /// # Panics
    ///
    /// Panics if the request is empty, overlong, out-of-vocabulary, or
    /// submitted after [`AsyncLutServer::shutdown`].
    pub fn submit_with_deadline(&self, tokens: Vec<usize>, deadline: Option<Duration>) -> Ticket {
        self.submit_inner(tokens, deadline, None)
    }

    /// Enqueues a request that continues an **existing** lifecycle trace
    /// — the sharded layer's seam: one [`RequestTrace`] per shard
    /// request, accumulating stages across every failover attempt, while
    /// each replica submission still gets its own replica-local id.
    pub(crate) fn submit_traced(
        &self,
        tokens: Vec<usize>,
        deadline: Option<Duration>,
        trace: Arc<RequestTrace>,
    ) -> Ticket {
        self.submit_inner(tokens, deadline, Some(trace))
    }

    fn submit_inner(
        &self,
        tokens: Vec<usize>,
        deadline: Option<Duration>,
        trace: Option<Arc<RequestTrace>>,
    ) -> Ticket {
        validate_request(&self.config, &tokens);
        let now = Instant::now();
        let (id, state, rejected_at_depth) = {
            let mut st = lock(&self.shared.state);
            assert!(!st.shutdown, "cannot submit after shutdown");
            let id = st.next_id;
            st.next_id += 1;
            // A fresh trace starts with `Admitted`; an inherited one
            // (shard failover) already recorded it at the shard door.
            let trace = trace.unwrap_or_else(|| {
                let t = Arc::new(RequestTrace::new(id));
                t.record(Stage::Admitted, self.replica_label, None);
                t
            });
            let state = Arc::new(TicketState::new(trace));
            let depth = st.batcher.queue_depth();
            if !self
                .admission
                .admits(depth + 1, st.batcher.queued_tokens() + tokens.len())
            {
                st.metrics.record_overload_rejection();
                (id, state, Some(depth))
            } else {
                state.trace.record(Stage::Queued, self.replica_label, None);
                st.tickets.insert(id, Arc::clone(&state));
                st.batcher
                    .push_at(id, tokens, now, deadline.map(|d| now + d));
                (id, state, None)
            }
        };
        match rejected_at_depth {
            Some(queue_depth) => {
                state
                    .trace
                    .record(Stage::Failed, self.replica_label, Some("overloaded"));
                if let Some(rec) = &self.recorder {
                    rec.record(
                        "overload-rejection",
                        self.replica_label,
                        Some(id),
                        queue_depth as u64,
                    );
                }
                // Resolved outside the shared lock; the ticket's own lock
                // orders the handoff.
                state.resolve(Err(ServeError::Overloaded { id, queue_depth }));
            }
            None => self.shared.work.notify_one(),
        }
        Ticket { id, state }
    }

    /// Enqueues an autoregressive generation: prefill the prompt, then
    /// emit `max_new` greedy tokens, one continuous-batched decode step
    /// at a time. Returns a streaming [`GenerateTicket`] immediately;
    /// tokens become readable as each step resolves.
    ///
    /// `deadline` (measured from now) bounds the **whole generation**: a
    /// sequence still queued — on either the prefill or the decode plane
    /// — when it lapses is culled, its KV cache freed, and the ticket
    /// resolves [`ServeError::DeadlineExceeded`] after yielding whatever
    /// tokens it had emitted. Admission charges the prompt length
    /// against the [`ServePolicy`] door watermarks once, at submit;
    /// per-token rejoins are never re-checked (the generation was
    /// already admitted).
    ///
    /// The emitted sequence is **bit-identical to
    /// [`BertModel::generate`]** — serial, step-at-a-time greedy
    /// decoding — at every precision, thread count and in-flight depth,
    /// whatever else is batched alongside (`tests/serve_decode.rs`).
    ///
    /// # Panics
    ///
    /// Panics if the prompt is empty, out-of-vocabulary, `max_new` is
    /// zero, `prompt.len() + max_new` exceeds the model's `max_seq`
    /// (every generated position must fit the KV cache), or the server
    /// is shut down.
    ///
    /// # Examples
    ///
    /// ```
    /// use nnlut_core::{train::TrainConfig, NnLutKit};
    /// use nnlut_serve::{AsyncLutServer, AsyncServerConfig};
    /// use nnlut_transformer::{BertModel, TransformerConfig};
    ///
    /// let model = BertModel::new_synthetic(TransformerConfig::roberta_tiny(), 3);
    /// let kit = NnLutKit::train_with(16, 3, &TrainConfig::fast());
    /// let server = AsyncLutServer::new(model, kit, AsyncServerConfig::default());
    ///
    /// let ticket = server.submit_generate(vec![5, 6, 7], 4, None);
    /// let mut tokens = Vec::new();
    /// for token in ticket {
    ///     tokens.push(token.expect("no deadline, cannot expire"));
    /// }
    /// assert_eq!(tokens.len(), 4);
    /// assert!(server.metrics().generations_completed() >= 1);
    /// ```
    pub fn submit_generate(
        &self,
        prompt: Vec<usize>,
        max_new: usize,
        deadline: Option<Duration>,
    ) -> GenerateTicket {
        self.submit_generate_inner(prompt, max_new, deadline, None)
    }

    /// [`AsyncLutServer::submit_generate`] continuing an existing trace —
    /// the sharded layer's failover seam (one trace per shard request,
    /// across every rebuild attempt).
    pub(crate) fn submit_generate_traced(
        &self,
        prompt: Vec<usize>,
        max_new: usize,
        deadline: Option<Duration>,
        trace: Arc<RequestTrace>,
    ) -> GenerateTicket {
        self.submit_generate_inner(prompt, max_new, deadline, Some(trace))
    }

    fn submit_generate_inner(
        &self,
        prompt: Vec<usize>,
        max_new: usize,
        deadline: Option<Duration>,
        trace: Option<Arc<RequestTrace>>,
    ) -> GenerateTicket {
        validate_request(&self.config, &prompt);
        assert!(max_new > 0, "must generate at least one token");
        assert!(
            prompt.len() + max_new <= self.config.max_seq,
            "prompt ({}) + max_new ({max_new}) exceeds max_seq {}",
            prompt.len(),
            self.config.max_seq
        );
        let now = Instant::now();
        let (id, state, rejected_at_depth) = {
            let mut st = lock(&self.shared.state);
            assert!(!st.shutdown, "cannot submit after shutdown");
            let id = st.next_id;
            st.next_id += 1;
            let trace = trace.unwrap_or_else(|| {
                let t = Arc::new(RequestTrace::new(id));
                t.record(Stage::Admitted, self.replica_label, None);
                t
            });
            let state = Arc::new(GenTicketState::new(trace));
            let depth = st.batcher.queue_depth();
            if !self
                .admission
                .admits(depth + 1, st.batcher.queued_tokens() + prompt.len())
            {
                st.metrics.record_overload_rejection();
                (id, state, Some(depth))
            } else {
                state.trace.record(Stage::Queued, self.replica_label, None);
                st.gens.insert(
                    id,
                    GenState {
                        emitted: 0,
                        max_new,
                        cache: None,
                        next_token: 0,
                        deadline: deadline.map(|d| now + d),
                        ticket: Arc::clone(&state),
                        last_emit: None,
                    },
                );
                st.batcher
                    .push_at(id, prompt, now, deadline.map(|d| now + d));
                (id, state, None)
            }
        };
        match rejected_at_depth {
            Some(queue_depth) => {
                state
                    .trace
                    .record(Stage::Failed, self.replica_label, Some("overloaded"));
                if let Some(rec) = &self.recorder {
                    rec.record(
                        "overload-rejection",
                        self.replica_label,
                        Some(id),
                        queue_depth as u64,
                    );
                }
                state.finish(Err(ServeError::Overloaded { id, queue_depth }));
            }
            None => self.shared.work.notify_one(),
        }
        GenerateTicket::from_state(id, state)
    }

    /// Generations currently live on this server (admitted, not yet
    /// completed/expired/failed). Each holds one KV cache — this is the
    /// cache-residency gauge, and it returns to zero when the last
    /// generation resolves (eviction is structural: the cache drops with
    /// the bookkeeping entry).
    pub fn active_generations(&self) -> usize {
        lock(&self.shared.state).gens.len()
    }

    /// Requests currently waiting in the queue (not yet dispatched).
    pub fn queue_depth(&self) -> usize {
        lock(&self.shared.state).batcher.queue_depth()
    }

    /// Sum of queued requests' token lengths — the queued-area signal the
    /// backpressure watermark runs on.
    pub fn queued_tokens(&self) -> usize {
        lock(&self.shared.state).batcher.queued_tokens()
    }

    /// A snapshot of the serving metrics so far. The shared lock is held
    /// only for the O(sketch-capacity) copy — every percentile is
    /// computed on the snapshot, outside the lock, so this call's cost is
    /// independent of how many batches the server has dispatched
    /// (`tests/serve_soak.rs` pins that down).
    pub fn metrics(&self) -> ServeMetrics {
        lock(&self.shared.state).metrics.clone()
    }

    /// Stops admission, drains every queued request (resolving all
    /// outstanding tickets, waiting out every in-flight batch) and joins
    /// the worker. Idempotent; also runs on drop.
    ///
    /// If the worker died abnormally (a panic that escaped even the
    /// per-batch containment), every still-unresolved ticket is failed
    /// with [`ServeError::ServerFailed`] rather than re-panicking — a
    /// drop during unwinding must never double-panic, and no waiter may
    /// be left hanging.
    pub fn shutdown(&mut self) {
        {
            lock(&self.shared.state).shutdown = true;
        }
        self.shared.work.notify_all();
        if let Some(worker) = self.worker.take() {
            if worker.join().is_err() {
                let mut st = lock(&self.shared.state);
                let orphaned: Vec<RequestId> = st.tickets.keys().copied().collect();
                for id in orphaned {
                    if let Some(ticket) = st.tickets.remove(&id) {
                        ticket
                            .trace
                            .record(Stage::Failed, None, Some("server-failed"));
                        ticket.resolve(Err(ServeError::ServerFailed { id }));
                    }
                }
                let orphaned_gens: Vec<RequestId> = st.gens.keys().copied().collect();
                for id in orphaned_gens {
                    if let Some(gen) = st.gens.remove(&id) {
                        gen.ticket
                            .trace
                            .record(Stage::Failed, None, Some("server-failed"));
                        gen.ticket.finish(Err(ServeError::ServerFailed { id }));
                    }
                }
            }
        }
    }
}

impl Drop for AsyncLutServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Terminates one live generation with `err`: records the failure stage,
/// folds its stage breakdown into the metrics, resolves its streaming
/// ticket and drops its [`GenState`] (KV cache included). Called under
/// the shared lock; a no-op if the generation already resolved.
fn fail_generation(
    st: &mut State,
    id: RequestId,
    replica: Option<usize>,
    note: &'static str,
    err: ServeError,
) {
    if let Some(gen) = st.gens.remove(&id) {
        gen.ticket.trace.record(Stage::Failed, replica, Some(note));
        let breakdown = gen.ticket.trace.breakdown();
        st.metrics.record_stages(&breakdown);
        gen.ticket.finish(Err(err));
    }
}

/// Advances one generation by its freshly emitted token: streams the
/// token to the ticket, records the `decoded` stage and the inter-token
/// gap, then either finishes the generation (dropping its cache) or
/// parks the cache and rejoins the decode plane. Called under the shared
/// lock.
fn advance_generation(
    st: &mut State,
    id: RequestId,
    cache: KvCache,
    token: usize,
    replica: Option<usize>,
) {
    let now = Instant::now();
    let Some(gen) = st.gens.get_mut(&id) else {
        // The generation resolved while its step was in flight (only the
        // worker-death sweep can do that); drop the cache and move on.
        return;
    };
    let gap = gen.last_emit.map(|t| now.saturating_duration_since(t));
    st.metrics.record_token_emitted(gap);
    gen.last_emit = Some(now);
    gen.emitted += 1;
    gen.next_token = token;
    gen.ticket.trace.record(Stage::Decoded, replica, None);
    gen.ticket.push_token(token);
    if gen.emitted >= gen.max_new {
        let gen = st.gens.remove(&id).expect("looked up above");
        gen.ticket.trace.record(Stage::Resolved, replica, None);
        let breakdown = gen.ticket.trace.breakdown();
        st.metrics.record_stages(&breakdown);
        st.metrics.record_generation_complete();
        gen.ticket.finish(Ok(()));
        // `gen` (and the cache) drop here — eviction on completion.
    } else {
        let context = cache.len();
        gen.cache = Some(cache);
        st.batcher.push_decode(id, context, now, gen.deadline);
    }
}

/// Resolves the in-order prefix of the completion queue: records metrics
/// and resolves tickets strictly in dispatch-sequence order, freeing one
/// in-flight slot per batch. Called under the shared lock.
fn resolve_ready_completions(st: &mut State, replica: Option<usize>) {
    while let Some(done) = st.completions.remove(&st.next_resolve) {
        st.next_resolve += 1;
        st.in_flight -= 1;
        let Completion {
            work,
            depth,
            latency,
            traces,
        } = done;
        match work {
            DoneWork::Bucket {
                closed,
                outcome: Err(()),
            } => {
                for (id, trace) in closed.ids.iter().zip(&traces) {
                    if st.gens.contains_key(id) {
                        fail_generation(
                            st,
                            *id,
                            replica,
                            "panic",
                            ServeError::ServerFailed { id: *id },
                        );
                    } else {
                        trace.record(Stage::Failed, replica, Some("panic"));
                        let breakdown = trace.breakdown();
                        st.metrics.record_stages(&breakdown);
                        if let Some(ticket) = st.tickets.remove(id) {
                            ticket.resolve(Err(ServeError::ServerFailed { id: *id }));
                        }
                    }
                }
            }
            DoneWork::Bucket {
                closed,
                outcome: Ok(results),
            } => {
                st.metrics.record(BatchRecord {
                    sequences: closed.batch.sequences(),
                    tokens: closed.batch.tokens(),
                    padded_tokens: closed.batch.padded_tokens(),
                    queue_depth: depth,
                    latency,
                    bucket: closed.bucket,
                    reason: closed.reason,
                    queue_waits: closed.queue_waits,
                });
                for ((id, result), trace) in closed.ids.iter().zip(results).zip(&traces) {
                    trace.record(Stage::Reordered, replica, None);
                    match result {
                        MemberResult::Encoded(hidden) => {
                            trace.record(Stage::Resolved, replica, None);
                            let breakdown = trace.breakdown();
                            st.metrics.record_stages(&breakdown);
                            if let Some(ticket) = st.tickets.remove(id) {
                                ticket.resolve(Ok(EncodeResponse {
                                    id: *id,
                                    tokens: hidden.rows(),
                                    hidden,
                                    latency,
                                }));
                            }
                        }
                        MemberResult::Prefilled { cache, token } => {
                            advance_generation(st, *id, cache, token, replica);
                        }
                    }
                }
            }
            DoneWork::Decode {
                closed,
                outcome: Err(()),
            } => {
                // The unwind consumed the members' caches: these
                // generations cannot continue on this server.
                for id in &closed.ids {
                    fail_generation(
                        st,
                        *id,
                        replica,
                        "panic",
                        ServeError::ServerFailed { id: *id },
                    );
                }
            }
            DoneWork::Decode {
                closed,
                outcome: Ok(stepped),
            } => {
                st.metrics.record_decode_batch(
                    closed.ids.len(),
                    closed.context_tokens,
                    latency,
                    closed.reason,
                );
                for (id, (cache, token)) in closed.ids.iter().zip(stepped) {
                    advance_generation(st, *id, cache, token, replica);
                }
            }
        }
    }
}

/// Runs one closed bucket batch: the pure-encode fast path is the
/// original [`BertModel::encode_batch`] call; a batch with generation
/// prefills splits by member kind — encodes re-pack and run wide,
/// prefills run through [`BertModel::prefill_batch`] (per-sequence
/// serial inside its lane, so results are composition-independent
/// bitwise) with the first token read greedily. Results return in member
/// order.
fn run_bucket(
    model: &BertModel,
    closed: &ClosedBatch,
    is_gen: &[bool],
    nl: &Nonlinearity,
    mode: MatmulMode,
    pool: &ThreadPool,
) -> Vec<MemberResult> {
    if !is_gen.contains(&true) {
        return model
            .encode_batch(&closed.batch, nl, mode, pool)
            .into_iter()
            .map(MemberResult::Encoded)
            .collect();
    }
    // Recover each member's tokens from the padded storage (the batcher
    // does not keep the originals past packing).
    let ids = closed.batch.ids();
    let max_len = closed.batch.max_len();
    let seqs: Vec<Vec<usize>> = closed
        .batch
        .lens()
        .iter()
        .enumerate()
        .map(|(i, &len)| ids[i * max_len..i * max_len + len].to_vec())
        .collect();
    let mut out: Vec<Option<MemberResult>> = (0..seqs.len()).map(|_| None).collect();
    let enc_idx: Vec<usize> = (0..seqs.len()).filter(|&i| !is_gen[i]).collect();
    if !enc_idx.is_empty() {
        let enc_seqs: Vec<Vec<usize>> = enc_idx.iter().map(|&i| seqs[i].clone()).collect();
        let batch = PaddedBatch::pack(&enc_seqs);
        for (&i, hidden) in enc_idx
            .iter()
            .zip(model.encode_batch(&batch, nl, mode, pool))
        {
            out[i] = Some(MemberResult::Encoded(hidden));
        }
    }
    let pre_idx: Vec<usize> = (0..seqs.len()).filter(|&i| is_gen[i]).collect();
    if !pre_idx.is_empty() {
        let pre_seqs: Vec<Vec<usize>> = pre_idx.iter().map(|&i| seqs[i].clone()).collect();
        for (&i, (cache, hidden)) in pre_idx
            .iter()
            .zip(model.prefill_batch(&pre_seqs, nl, mode, pool))
        {
            let token = model.greedy_token(&hidden);
            out[i] = Some(MemberResult::Prefilled { cache, token });
        }
    }
    out.into_iter()
        .map(|r| r.expect("every member computed"))
        .collect()
}

/// Runs one closed decode batch: every sequence advances one token
/// ([`BertModel::decode_batch`], lane-split, bit-identical to stepping
/// alone) and its next token is read greedily. Caches return with their
/// new K/V rows appended.
fn run_decode(
    model: &BertModel,
    mut steps: Vec<(KvCache, usize)>,
    nl: &Nonlinearity,
    mode: MatmulMode,
    pool: &ThreadPool,
) -> Vec<(KvCache, usize)> {
    let hiddens = {
        let mut refs: Vec<(&mut KvCache, usize)> = steps.iter_mut().map(|(c, t)| (c, *t)).collect();
        model.decode_batch(&mut refs, nl, mode, pool)
    };
    steps
        .into_iter()
        .zip(hiddens)
        .map(|((cache, _), hidden)| {
            let token = model.greedy_token(&hidden);
            (cache, token)
        })
        .collect()
}

/// One encoder thread: pop a job, encode it (the only expensive step —
/// outside the lock), park the result in the ordered completion queue and
/// resolve whatever prefix is ready.
#[allow(clippy::too_many_arguments)] // private seam; mirrors the config
fn encoder_loop(
    shared: Arc<Shared>,
    model: Arc<BertModel>,
    nl: Arc<Nonlinearity>,
    mode: MatmulMode,
    pool: ThreadPool,
    fault: Option<FaultInjector>,
    recorder: Option<Arc<FlightRecorder>>,
    replica: Option<usize>,
) {
    loop {
        let job = {
            let mut st = lock(&shared.state);
            loop {
                if let Some(job) = st.encode_queue.pop_front() {
                    break job;
                }
                if st.encoders_exit {
                    return;
                }
                st = shared
                    .encode
                    .wait(st)
                    .unwrap_or_else(PoisonError::into_inner);
            }
        };
        // The expensive part, lock released: submitters keep admitting and
        // the dispatcher keeps closing batches for the other encoders. A
        // panic here is contained (submit validates at the door, so none
        // is expected): the batch's tickets resolve to `ServerFailed`
        // instead of leaving waiters hanging, and the server lives on.
        // Nothing is mutated across the unwind boundary — the model,
        // backends and pool are all shared-immutable — so
        // `AssertUnwindSafe` is honest.
        // Injected faults fire here too — inside the containment, keyed
        // on the dispatch sequence number (the replica-local batch
        // coordinate) — so a chaos plan exercises the exact same failure
        // path a real encode panic takes.
        let start = Instant::now();
        let seq = job.seq;
        let work = match job.work {
            JobWork::Bucket { closed, is_gen } => {
                let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    if let Some(injector) = &fault {
                        injector.before_encode(seq);
                    }
                    run_bucket(&model, &closed, &is_gen, &nl, mode, &pool)
                }));
                DoneWork::Bucket {
                    closed,
                    outcome: outcome.map_err(|_| ()),
                }
            }
            JobWork::Decode { closed, steps } => {
                // `steps` moves into the closure: a panic consumes the
                // caches in the unwind, which is exactly the failure
                // contract (the generations cannot continue here).
                let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    if let Some(injector) = &fault {
                        injector.before_encode(seq);
                    }
                    run_decode(&model, steps, &nl, mode, &pool)
                }));
                DoneWork::Decode {
                    closed,
                    outcome: outcome.map_err(|_| ()),
                }
            }
        };
        let latency = start.elapsed();
        // Stage recording and journaling happen outside the lock — the
        // traces were cloned into the job at dispatch.
        let (panicked, members) = match &work {
            DoneWork::Bucket { closed, outcome } => (outcome.is_err(), closed.ids.len()),
            DoneWork::Decode { closed, outcome } => (outcome.is_err(), closed.ids.len()),
        };
        let note = panicked.then_some("panic");
        for trace in &job.traces {
            trace.record(Stage::Encoded, replica, note);
        }
        if let Some(rec) = &recorder {
            if panicked {
                rec.record("batch-panic", replica, None, members as u64);
                // The incident freezes the ring *as of the panic* —
                // before later traffic wraps past the lead-up events.
                rec.snapshot_incident("batch-panic", replica);
            } else {
                rec.record("batch-encoded", replica, None, members as u64);
            }
        }
        let mut st = lock(&shared.state);
        st.completions.insert(
            seq,
            Completion {
                work,
                depth: job.depth,
                latency,
                traces: job.traces,
            },
        );
        resolve_ready_completions(&mut st, replica);
        drop(st);
        // A slot may have been freed and the queue may have moved: wake
        // the dispatcher (and any shutdown waiter).
        shared.work.notify_all();
    }
}

/// The background dispatcher: expire deadlines, close batches, hand them
/// to the encoder threads, sleep until the next timed event or arrival.
#[allow(clippy::too_many_arguments)] // private seam; mirrors the config
fn dispatcher_loop(
    shared: Arc<Shared>,
    model: Arc<BertModel>,
    nl: Arc<Nonlinearity>,
    mode: MatmulMode,
    threads: usize,
    close: ClosePolicy,
    max_in_flight: usize,
    fault: Option<FaultInjector>,
    recorder: Option<Arc<FlightRecorder>>,
    replica: Option<usize>,
) {
    let encoders: Vec<JoinHandle<()>> = (0..max_in_flight)
        .map(|i| {
            let shared = Arc::clone(&shared);
            let model = Arc::clone(&model);
            let nl = Arc::clone(&nl);
            let fault = fault.clone();
            let recorder = recorder.clone();
            std::thread::Builder::new()
                .name(format!("nnlut-serve-encode-{i}"))
                .spawn(move || {
                    encoder_loop(
                        shared,
                        model,
                        nl,
                        mode,
                        ThreadPool::new(threads),
                        fault,
                        recorder,
                        replica,
                    )
                })
                .expect("spawn serving encoder")
        })
        .collect();

    let mut st = lock(&shared.state);
    loop {
        let now = Instant::now();
        // Expire deadlines first — an expired request must never be
        // packed, whatever else this wakeup does. Both planes: a queued
        // prefill (generation or encode) and a queued decode step die
        // the same way.
        let expired = st.batcher.take_expired(now);
        let expired_decode = st.batcher.take_expired_decode(now);
        if !expired.is_empty() || !expired_decode.is_empty() {
            for req in expired {
                let waited = now.saturating_duration_since(req.queued_at);
                st.metrics.record_deadline_miss(waited);
                if let Some(rec) = &recorder {
                    rec.record(
                        "deadline-miss",
                        replica,
                        Some(req.id),
                        waited.as_millis() as u64,
                    );
                }
                if st.gens.contains_key(&req.id) {
                    fail_generation(
                        &mut st,
                        req.id,
                        replica,
                        "deadline",
                        ServeError::DeadlineExceeded { id: req.id, waited },
                    );
                } else if let Some(ticket) = st.tickets.remove(&req.id) {
                    ticket
                        .trace
                        .record(Stage::Failed, replica, Some("deadline"));
                    let breakdown = ticket.trace.breakdown();
                    st.metrics.record_stages(&breakdown);
                    ticket.resolve(Err(ServeError::DeadlineExceeded { id: req.id, waited }));
                }
            }
            for step in expired_decode {
                let waited = now.saturating_duration_since(step.queued_at);
                st.metrics.record_deadline_miss(waited);
                if let Some(rec) = &recorder {
                    rec.record(
                        "deadline-miss",
                        replica,
                        Some(step.id),
                        waited.as_millis() as u64,
                    );
                }
                fail_generation(
                    &mut st,
                    step.id,
                    replica,
                    "deadline",
                    ServeError::DeadlineExceeded {
                        id: step.id,
                        waited,
                    },
                );
            }
            continue; // re-plan against the culled queue
        }
        // Dispatch while an in-flight slot is free and a close fires.
        if st.in_flight < max_in_flight {
            let plan = if st.shutdown {
                // Flush: ignore timers. The decode plane drains first —
                // in-flight generations *finish* under shutdown (their
                // token budget bounds the drain), and their steps are
                // the cheapest way to retire queued work.
                if st.batcher.decode_depth() > 0 {
                    Some((CloseTarget::Decode, CloseReason::Drain))
                } else {
                    st.batcher
                        .plan_drain()
                        .map(|b| (CloseTarget::Bucket(b), CloseReason::Drain))
                }
            } else {
                st.batcher.plan_close(now, &close)
            };
            if let Some((target, reason)) = plan {
                let depth = st.batcher.queue_depth();
                let (work, member_ids) = match target {
                    CloseTarget::Bucket(bucket) => {
                        let closed = st.batcher.close_bucket(bucket, now, reason);
                        let is_gen: Vec<bool> = closed
                            .ids
                            .iter()
                            .map(|id| st.gens.contains_key(id))
                            .collect();
                        let ids = closed.ids.clone();
                        (JobWork::Bucket { closed, is_gen }, ids)
                    }
                    CloseTarget::Decode => {
                        let closed = st.batcher.close_decode(now, reason);
                        let steps: Vec<(KvCache, usize)> = closed
                            .ids
                            .iter()
                            .map(|id| {
                                let gen = st
                                    .gens
                                    .get_mut(id)
                                    .expect("queued decode step belongs to a live generation");
                                let cache = gen
                                    .cache
                                    .take()
                                    .expect("cache parked while the step queued");
                                (cache, gen.next_token)
                            })
                            .collect();
                        let ids = closed.ids.clone();
                        (JobWork::Decode { closed, steps }, ids)
                    }
                };
                let seq = st.next_seq;
                st.next_seq += 1;
                st.in_flight += 1;
                // Clone the members' traces now, under the lock: the
                // encoder then records on them lock-free. Encode members
                // live in the ticket map, generations in the gens map.
                let traces: Vec<Arc<RequestTrace>> = member_ids
                    .iter()
                    .map(|id| {
                        st.tickets
                            .get(id)
                            .map(|t| Arc::clone(&t.trace))
                            .or_else(|| st.gens.get(id).map(|g| Arc::clone(&g.ticket.trace)))
                            .unwrap_or_else(|| Arc::new(RequestTrace::new(*id)))
                    })
                    .collect();
                let is_decode = matches!(work, JobWork::Decode { .. });
                for trace in &traces {
                    // A decode step skips `Assembled` — there is no
                    // packing phase; it keeps per-token event volume down
                    // (traces cap at `RequestTrace::MAX_EVENTS`).
                    if !is_decode {
                        trace.record(Stage::Assembled, None, None);
                    }
                    trace.record(Stage::Dispatched, replica, None);
                }
                if let Some(rec) = &recorder {
                    rec.record("batch-dispatched", replica, None, member_ids.len() as u64);
                }
                st.encode_queue.push_back(EncodeJob {
                    seq,
                    work,
                    depth,
                    traces,
                });
                shared.encode.notify_one();
                continue; // a further slot may be free
            }
        }
        if st.shutdown && st.batcher.is_empty() && st.in_flight == 0 {
            // Queue drained, every batch resolved, admission closed. No
            // generation can be live here (each is always either queued,
            // in flight, or resolved) — but a sweep costs nothing and
            // guarantees no streaming ticket is ever left hanging.
            let leftover: Vec<RequestId> = st.gens.keys().copied().collect();
            for id in leftover {
                fail_generation(
                    &mut st,
                    id,
                    replica,
                    "server-failed",
                    ServeError::ServerFailed { id },
                );
            }
            // Tell the idle encoders to exit and join them.
            st.encoders_exit = true;
            drop(st);
            shared.encode.notify_all();
            break;
        }
        // With a free slot, wake for the next close *or* deadline event.
        // Saturated (every in-flight slot busy), an elapsed close timer
        // can't be acted on — sleeping on it would spin at the floor
        // duration for the whole encode — so only deadline expiry keeps a
        // timer; a completion wakes the dispatcher through `work`.
        let timer = if st.in_flight < max_in_flight {
            st.batcher.next_event(&close)
        } else {
            st.batcher.earliest_deadline()
        };
        st = match timer {
            Some(at) => {
                // Floor the sleep so a just-elapsed timer cannot spin the
                // loop at zero-duration waits.
                let wait = at
                    .saturating_duration_since(now)
                    .max(Duration::from_micros(50));
                shared
                    .work
                    .wait_timeout(st, wait)
                    .unwrap_or_else(PoisonError::into_inner)
                    .0
            }
            None => shared.work.wait(st).unwrap_or_else(PoisonError::into_inner),
        };
    }
    for handle in encoders {
        if handle.join().is_err() {
            // An encoder died outside the per-batch containment. Propagate
            // so `shutdown`'s sweep fails the orphaned tickets instead of
            // leaving waiters hanging.
            panic!("serving encoder thread panicked");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nnlut_core::train::TrainConfig;
    use nnlut_transformer::TransformerConfig;

    fn tiny_async(config: AsyncServerConfig) -> AsyncLutServer {
        let model = BertModel::new_synthetic(TransformerConfig::roberta_tiny(), 9);
        let kit = NnLutKit::train_with(16, 9, &TrainConfig::fast());
        AsyncLutServer::new(model, kit, config)
    }

    #[test]
    fn tickets_resolve_with_correct_shapes() {
        let server = tiny_async(AsyncServerConfig::default());
        let tickets: Vec<Ticket> = (1..=5).map(|n| server.submit(vec![2; n])).collect();
        for (n, t) in tickets.into_iter().enumerate() {
            assert_eq!(t.id(), n as u64);
            let r = t.wait().expect("no deadline set");
            assert_eq!(r.id, n as u64);
            assert_eq!(r.hidden.shape(), (n + 1, 64));
        }
        let m = server.metrics();
        assert_eq!(m.total_tokens(), 1 + 2 + 3 + 4 + 5);
        assert_eq!(m.deadline_misses(), 0);
    }

    #[test]
    fn multi_in_flight_resolves_everything() {
        let server = tiny_async(AsyncServerConfig {
            max_in_flight: 3,
            threads: 2,
            ..AsyncServerConfig::default()
        });
        let tickets: Vec<Ticket> = (0..12).map(|n| server.submit(vec![2; 1 + n % 7])).collect();
        for (n, t) in tickets.into_iter().enumerate() {
            let r = t.wait().expect("no deadline set");
            assert_eq!(r.id, n as u64);
            assert_eq!(r.tokens, 1 + n % 7);
        }
        let m = server.metrics();
        assert_eq!(m.total_sequences(), 12);
        assert_eq!(m.deadline_misses(), 0);
    }

    #[test]
    fn shutdown_flushes_outstanding_tickets() {
        let mut server = tiny_async(AsyncServerConfig {
            close: ClosePolicy {
                // An hour-long age: only the shutdown drain can flush.
                max_batch_age: Duration::from_secs(3600),
                deadline_slack: Duration::from_millis(1),
            },
            ..AsyncServerConfig::default()
        });
        let t1 = server.submit(vec![1, 2, 3]);
        let t2 = server.submit(vec![4; 10]);
        server.shutdown();
        assert!(t1.is_ready() && t2.is_ready());
        assert_eq!(t1.wait().unwrap().tokens, 3);
        assert_eq!(t2.wait().unwrap().tokens, 10);
    }

    #[test]
    fn overload_rejects_at_the_door_and_recovers() {
        let mut server = tiny_async(AsyncServerConfig {
            admission: ServePolicy::with_max_queue_depth(2),
            close: ClosePolicy {
                // Nothing closes on its own: the queue stays at depth 2.
                max_batch_age: Duration::from_secs(3600),
                deadline_slack: Duration::from_millis(1),
            },
            ..AsyncServerConfig::default()
        });
        let a = server.submit(vec![1; 3]);
        let b = server.submit(vec![2; 3]);
        let rejected = server.submit(vec![3; 3]);
        // The rejection is immediate — no worker involvement.
        assert!(rejected.is_ready());
        match rejected.wait() {
            Err(ServeError::Overloaded { id, queue_depth }) => {
                assert_eq!(id, 2);
                assert_eq!(queue_depth, 2);
            }
            other => panic!("expected Overloaded, got {other:?}"),
        }
        assert_eq!(server.metrics().overload_rejections(), 1);
        // Queued requests are unaffected by the rejection (FIFO fairness):
        // the shutdown drain serves both.
        server.shutdown();
        assert_eq!(a.wait().unwrap().tokens, 3);
        assert_eq!(b.wait().unwrap().tokens, 3);
    }

    #[test]
    fn queued_area_watermark_rejects_large_backlog() {
        let server = tiny_async(AsyncServerConfig {
            admission: ServePolicy::with_max_queued_tokens(10),
            close: ClosePolicy {
                max_batch_age: Duration::from_secs(3600),
                deadline_slack: Duration::from_millis(1),
            },
            ..AsyncServerConfig::default()
        });
        let _a = server.submit(vec![1; 8]); // 8 of 10 queued tokens
        let rejected = server.submit(vec![2; 3]); // would be 11 — rejected
        assert!(matches!(
            rejected.wait(),
            Err(ServeError::Overloaded { .. })
        ));
        let small = server.submit(vec![2; 2]); // exactly 10 — admitted
        assert_eq!(server.queued_tokens(), 10);
        drop(server); // shutdown drain serves the admitted requests
        assert_eq!(small.wait().unwrap().tokens, 2);
    }

    #[test]
    fn generate_streams_tokens_matching_the_serial_oracle() {
        // The same synthetic weights + kit, once for the server and once
        // for the serial step-at-a-time oracle.
        let model = BertModel::new_synthetic(TransformerConfig::roberta_tiny(), 9);
        let kit = NnLutKit::train_with(16, 9, &TrainConfig::fast());
        let nl = Nonlinearity::all_lut(&kit);
        let oracle = model.generate(&[3, 1, 4, 1, 5], 6, &nl, MatmulMode::F32);

        let server = tiny_async(AsyncServerConfig::default());
        let ticket = server.submit_generate(vec![3, 1, 4, 1, 5], 6, None);
        let mut streamed = Vec::new();
        for token in ticket {
            streamed.push(token.expect("no deadline, cannot expire"));
        }
        assert_eq!(streamed, oracle, "continuous batching changed a token");

        let m = server.metrics();
        assert_eq!(m.generated_tokens(), 6);
        assert_eq!(m.generations_completed(), 1);
        assert_eq!(m.decode_steps(), 5, "first token comes from the prefill");
        assert!(m.decode_batches() >= 1);
        // Inter-token gaps exist once two tokens are out.
        assert!(m.inter_token_percentile(50.0).is_some());
        // Eviction on completion: no residual generation state or cache.
        assert_eq!(server.active_generations(), 0);
    }

    #[test]
    fn mixed_encodes_and_generations_share_batches() {
        let server = tiny_async(AsyncServerConfig {
            threads: 2,
            max_in_flight: 2,
            ..AsyncServerConfig::default()
        });
        let gens: Vec<GenerateTicket> = (0..3)
            .map(|i| server.submit_generate(vec![1 + i, 2, 3], 4, None))
            .collect();
        let encodes: Vec<Ticket> = (0..4).map(|n| server.submit(vec![2; 3 + n])).collect();
        for t in encodes {
            let r = t.wait().expect("no deadline set");
            assert_eq!(r.hidden.rows(), r.tokens);
        }
        for g in gens {
            let r = g.wait().expect("no deadline set");
            assert_eq!(r.tokens.len(), 4);
        }
        let m = server.metrics();
        assert_eq!(m.generations_completed(), 3);
        assert_eq!(m.generated_tokens(), 12);
        assert_eq!(server.active_generations(), 0);
    }

    #[test]
    fn generation_deadline_expires_cleanly() {
        let server = tiny_async(AsyncServerConfig {
            close: ClosePolicy {
                // Nothing closes on age: the prefill sits queued until
                // its deadline lapses.
                max_batch_age: Duration::from_secs(3600),
                deadline_slack: Duration::ZERO,
            },
            ..AsyncServerConfig::default()
        });
        let ticket = server.submit_generate(vec![1, 2], 4, Some(Duration::from_millis(1)));
        match ticket.wait() {
            Err(ServeError::DeadlineExceeded { id, .. }) => assert_eq!(id, 0),
            other => panic!("expected DeadlineExceeded, got {other:?}"),
        }
        assert_eq!(server.active_generations(), 0, "expiry freed the cache");
        assert_eq!(server.metrics().deadline_misses(), 1);
    }

    #[test]
    fn shutdown_finishes_in_flight_generations() {
        let mut server = tiny_async(AsyncServerConfig {
            close: ClosePolicy {
                // Only the shutdown drain can run the prefill.
                max_batch_age: Duration::from_secs(3600),
                deadline_slack: Duration::from_millis(1),
            },
            ..AsyncServerConfig::default()
        });
        let g = server.submit_generate(vec![7, 8, 9], 5, None);
        let e = server.submit(vec![1; 4]);
        server.shutdown();
        assert!(g.is_done(), "shutdown drains generations to completion");
        assert_eq!(g.wait().expect("drained, not dropped").tokens.len(), 5);
        assert_eq!(e.wait().expect("drained").tokens, 4);
    }

    #[test]
    #[should_panic(expected = "exceeds max_seq")]
    fn submit_generate_validates_the_token_budget() {
        // roberta_tiny max_seq = 64: 60 prompt + 5 new cannot fit.
        tiny_async(AsyncServerConfig::default()).submit_generate(vec![1; 60], 5, None);
    }

    #[test]
    #[should_panic(expected = "after shutdown")]
    fn submit_after_shutdown_panics() {
        let mut server = tiny_async(AsyncServerConfig::default());
        server.shutdown();
        server.submit(vec![1, 2]);
    }

    #[test]
    #[should_panic(expected = "out of vocabulary")]
    fn async_submit_validates_at_the_door() {
        tiny_async(AsyncServerConfig::default()).submit(vec![10_000]);
    }
}
