//! **FIG2** — Figure 2 reproduction: approximation accuracy of NN-LUT vs
//! Linear-LUT for GELU, Softmax (exp/div), and LayerNorm (1/√x).
//!
//! Prints, per operator: the L1 error of both methods over the evaluation
//! range (the figure's bottom row), plus a coarse ASCII overlay of the
//! approximated curves (the figure's top row) and a TSV block suitable for
//! replotting.
//!
//! Run: `cargo run --release -p nnlut-bench --bin fig2_approx_accuracy`

#![allow(clippy::needless_range_loop)]

use nnlut_bench::{linear_kit, paper_kit};
use nnlut_core::funcs::TargetFunction;
use nnlut_core::metrics::{max_abs_error, mean_abs_error};
use nnlut_core::NnLutKit;

struct Panel {
    name: &'static str,
    exact: fn(f32) -> f32,
    range: (f32, f32),
}

fn kit_eval(kit: &NnLutKit, panel: &'static str, x: f32) -> f32 {
    match panel {
        "GELU" => kit.gelu(x),
        "Softmax(exp)" => kit.exp(x),
        "Softmax(div)" => kit.recip(x),
        "LayerNorm(1/sqrt)" => kit.inv_sqrt(x),
        _ => unreachable!(),
    }
}

fn main() {
    println!("== Figure 2: approximation accuracy, 16-entry LUTs ==\n");
    let nn = paper_kit();
    let lin = linear_kit();

    let panels = [
        Panel {
            name: "GELU",
            exact: |x| TargetFunction::Gelu.eval(x),
            range: (-5.0, 5.0),
        },
        Panel {
            name: "Softmax(exp)",
            exact: |x| TargetFunction::Exp.eval(x),
            range: (-12.0, 0.0),
        },
        Panel {
            name: "Softmax(div)",
            exact: |x| TargetFunction::Recip.eval(x),
            range: (1.0, 64.0),
        },
        Panel {
            name: "LayerNorm(1/sqrt)",
            exact: |x| TargetFunction::Rsqrt.eval(x),
            range: (0.01, 64.0),
        },
    ];

    println!("L1 / max error over evaluation range (paper Fig. 2 bottom row):");
    println!(
        "{:<20}{:>12}{:>12}{:>12}{:>12}",
        "operator", "NN-LUT L1", "Linear L1", "NN-LUT max", "Linear max"
    );
    for p in &panels {
        let l1_nn = mean_abs_error(|x| kit_eval(&nn, p.name, x), p.exact, p.range, 8000);
        let l1_li = mean_abs_error(|x| kit_eval(&lin, p.name, x), p.exact, p.range, 8000);
        let mx_nn = max_abs_error(|x| kit_eval(&nn, p.name, x), p.exact, p.range, 8000);
        let mx_li = max_abs_error(|x| kit_eval(&lin, p.name, x), p.exact, p.range, 8000);
        println!(
            "{:<20}{:>12.5}{:>12.5}{:>12.5}{:>12.5}",
            p.name, l1_nn, l1_li, mx_nn, mx_li
        );
    }

    println!("\nTSV samples for replotting (x, exact, nn_lut, linear_lut):");
    for p in &panels {
        println!("# {}", p.name);
        for i in 0..=32 {
            let x = p.range.0 + (p.range.1 - p.range.0) * i as f32 / 32.0;
            println!(
                "{x:.4}\t{:.5}\t{:.5}\t{:.5}",
                (p.exact)(x),
                kit_eval(&nn, p.name, x),
                kit_eval(&lin, p.name, x)
            );
        }
    }

    // ASCII overlay of the most telling panel: 1/sqrt near the origin,
    // where fixed breakpoints fail (paper Fig. 2c).
    println!("\nLayerNorm 1/sqrt near the origin ('.' exact, 'n' NN-LUT, 'L' Linear-LUT):");
    let (lo, hi) = (0.05f32, 4.0f32);
    let rows = 16;
    let cols = 64;
    let mut grid = vec![vec![b' '; cols]; rows];
    let ymax = 1.0 / lo.sqrt();
    for c in 0..cols {
        let x = lo + (hi - lo) * c as f32 / (cols - 1) as f32;
        let mut plot = |y: f32, ch: u8| {
            let t = (y / ymax).clamp(0.0, 1.0);
            let r = ((1.0 - t) * (rows - 1) as f32).round() as usize;
            let cell = &mut grid[r][c];
            if *cell == b' ' || ch == b'.' {
                *cell = ch;
            }
        };
        plot(lin.inv_sqrt(x), b'L');
        plot(nn.inv_sqrt(x), b'n');
        plot(1.0 / x.sqrt(), b'.');
    }
    for row in grid {
        println!("{}", String::from_utf8_lossy(&row));
    }
}
