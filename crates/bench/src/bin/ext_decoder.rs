//! **EXT-DEC** — extension experiment: GPT-style decoder steps.
//!
//! The paper's introduction motivates efficient Transformer inference with
//! GPT-3; its evaluation covers encoder mode only. This extension applies
//! the same Fig. 3c NPU model to single-token decoder steps with a KV
//! cache, where the GEMMs collapse to matrix–vector products while Softmax
//! still scans the whole context — so the non-linear share, and therefore
//! NN-LUT's advantage, is even larger than in Table 5.
//!
//! Also prints the SFU throughput-matching analysis: how many SFU lanes
//! each implementation needs before the non-linear ops hide behind the
//! MAC arrays.
//!
//! Run: `cargo run --release -p nnlut-bench --bin ext_decoder`

use nnlut_npu::{
    decoder_step_workload, sfu_lanes_for_throughput_match, simulate, transformer_workload,
    ModelShape, NonlinearImpl, NpuConfig,
};

fn main() {
    let npu = NpuConfig::mobile_soc();
    let shape = ModelShape::roberta_base();

    println!("== Extension: decoder-step (KV-cached generation) breakdown ==\n");
    println!(
        "{:>8} {:>14} {:>14} {:>9} {:>24}",
        "context", "I-BERT cyc", "NN-LUT cyc", "speedup", "non-linear share"
    );
    for context in [64usize, 256, 1024, 4096] {
        let w = decoder_step_workload(&shape, context);
        let ib = simulate(&npu, &w, NonlinearImpl::IBert);
        let nn = simulate(&npu, &w, NonlinearImpl::NnLut);
        let ib_nl = (ib.gelu + ib.layernorm + ib.softmax) / ib.total() * 100.0;
        let nn_nl = (nn.gelu + nn.layernorm + nn.softmax) / nn.total() * 100.0;
        println!(
            "{context:>8} {:>14.0} {:>14.0} {:>8.2}x {:>12.1}% -> {:>5.1}%",
            ib.total(),
            nn.total(),
            ib.total() / nn.total(),
            ib_nl,
            nn_nl
        );
    }

    println!("\n== SFU throughput matching (encoder, SL = 512) ==");
    let w = transformer_workload(&shape, 512);
    for implementation in [NonlinearImpl::NnLut, NonlinearImpl::IBert] {
        match sfu_lanes_for_throughput_match(&npu, &w, implementation) {
            Some(lanes) => println!(
                "{implementation}: {lanes} SFU lanes hide the non-linear ops behind the GEMMs"
            ),
            None => println!("{implementation}: cannot match within 4096 lanes"),
        }
    }

    println!("\nShape to check: decoder speedups exceed the encoder-mode Table 5,");
    println!("and NN-LUT reaches throughput parity with fewer SFU lanes.");
}
