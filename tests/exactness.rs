//! Cross-crate integration tests of the paper's central theorem — the
//! NN → LUT transformation is exact — and of paper-config approximation
//! quality (the tight bounds the unit tests' fast configs cannot check).

use nn_lut::core::convert::nn_to_lut;
use nn_lut::core::funcs::TargetFunction;
use nn_lut::core::metrics::mean_abs_error;
use nn_lut::core::recipe;
use nn_lut::core::train::TrainConfig;
use nn_lut::core::{ApproxNet, NnLutKit};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Exactness over random networks and random probe points, including
    /// degenerate parameters (zero weights = dead neurons).
    #[test]
    fn lut_equals_network_everywhere(
        params in proptest::collection::vec(
            (-3.0f32..3.0, -4.0f32..4.0, -4.0f32..4.0),
            1..20
        ),
        c in -2.0f32..2.0,
        xs in proptest::collection::vec(-100.0f32..100.0, 1..64),
    ) {
        let m: Vec<f32> = params.iter().map(|p| p.0).collect();
        // Quantize weights so some become exactly zero (dead neurons).
        let n: Vec<f32> = params.iter().map(|p| (p.1 * 2.0).round() / 2.0).collect();
        let b: Vec<f32> = params.iter().map(|p| p.2).collect();
        let net = ApproxNet::from_params(m, n, b, c);
        let lut = nn_to_lut(&net);
        for x in xs {
            let want = net.eval_f64(x as f64);
            let got = lut.eval(x) as f64;
            prop_assert!(
                (want - got).abs() <= 3e-4 * (1.0 + want.abs()),
                "x={}: net={} lut={}", x, want, got
            );
        }
    }
}

/// Paper-config approximation quality for every Table-1 function: the L1
/// error of a trained 16-entry LUT over its training domain must be small
/// (paper Fig. 2 shows errors at the 1e-3 level).
#[test]
fn paper_config_table1_quality() {
    for (func, bound) in [
        (TargetFunction::Gelu, 0.01),
        (TargetFunction::Exp, 0.005),
        (TargetFunction::Recip, 0.005),
        (TargetFunction::Rsqrt, 0.02),
    ] {
        let recipe = recipe::recipe_for(func);
        let (net, _) = recipe::train_recipe(&recipe, 16, &TrainConfig::paper(), 1);
        let lut = nn_to_lut(&net);
        let err = mean_abs_error(|x| lut.eval(x), |x| func.eval(x), recipe.domain, 8000);
        assert!(
            err < bound,
            "{}: L1 error {err} over {:?}",
            func.name(),
            recipe.domain
        );
    }
}

/// Paper-config kit: composed softmax within a few percent of exact on
/// typical attention rows. (A 16-entry DIV table carries a worst-case
/// ~5% relative error where the denominator lands mid-segment; the
/// Table-2 reproductions confirm this does not move task accuracy.)
#[test]
fn paper_config_softmax_is_tight() {
    let kit = NnLutKit::train_with(16, 77, &TrainConfig::paper());
    let rows: [&[f32]; 3] = [
        &[1.0, 2.0, 3.0, 4.0],
        &[0.0, -3.0, 2.5, 0.7, -1.2, 0.4, 1.9, -0.8],
        &[5.0, 4.9, 4.8, -10.0],
    ];
    for logits in rows {
        let mut approx = logits.to_vec();
        kit.softmax(&mut approx);
        let max = logits.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
        let exps: Vec<f64> = logits.iter().map(|&x| ((x - max) as f64).exp()).collect();
        let sum: f64 = exps.iter().sum();
        for (a, e) in approx.iter().zip(exps.iter().map(|e| (e / sum) as f32)) {
            assert!((a - e).abs() < 0.05, "row {logits:?}: {a} vs {e}");
        }
    }
}

/// Paper-config kit: LayerNorm output variance within 3% of 1 across five
/// orders of magnitude of input variance (the §3.3.2 input-scaling claim).
#[test]
fn paper_config_layer_norm_handles_wide_variance() {
    let kit = NnLutKit::train_with(16, 77, &TrainConfig::paper());
    for scale in [1e-3f32, 1e-2, 0.1, 1.0, 10.0, 100.0] {
        let mut xs: Vec<f32> = (0..64).map(|i| (i as f32 * 0.7).sin() * scale).collect();
        kit.layer_norm(&mut xs, 1e-9);
        let mean: f32 = xs.iter().sum::<f32>() / xs.len() as f32;
        let var: f32 = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f32>() / xs.len() as f32;
        // 4% rather than the paper-motivated 3%: the bound sits right at
        // the quality of a seeded training run, and the vendored offline
        // RNG (see vendor/rand) draws a different stream per seed than the
        // crates.io StdRng, shifting trained-kit error by a few tenths of
        // a percent either way.
        assert!(
            (var - 1.0).abs() < 0.04,
            "input scale {scale}: output variance {var}"
        );
    }
}

/// Converting the kit between precisions preserves table semantics: FP16
/// within half-epsilon-scale error, INT32 within quantization-step error.
#[test]
fn precision_modes_stay_close_to_fp32() {
    let kit = NnLutKit::train_with(16, 77, &TrainConfig::paper());
    let f16 = kit
        .with_precision(nn_lut::core::precision::Precision::F16)
        .unwrap();
    let i32k = kit
        .with_precision(nn_lut::core::precision::Precision::Int32)
        .unwrap();
    for i in 0..200 {
        let x = -5.0 + i as f32 * 0.05;
        let base = kit.gelu(x);
        assert!((f16.gelu(x) - base).abs() < 8e-3, "f16 at {x}");
        assert!((i32k.gelu(x) - base).abs() < 8e-3, "int32 at {x}");
    }
}
