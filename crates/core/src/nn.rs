//! The one-hidden-layer ReLU approximator network of paper Eq. 5.

/// A one-hidden-layer ReLU network `NN(x) = Σ_j m_j·ReLU(n_j·x + b_j) + c`.
///
/// With `H` hidden neurons this is a continuous piecewise-linear function
/// with at most `H` breakpoints at `d_j = -b_j / n_j`, which is exactly what
/// [`crate::convert::nn_to_lut`] exploits. The output bias `c` is an
/// extension over the paper's Eq. 5 (which has none); it folds into every
/// LUT intercept during conversion, so it costs no extra hardware while
/// strictly enlarging the function class. Construct with
/// [`ApproxNet::from_params`] or train one via [`crate::train`].
///
/// # Examples
///
/// ```
/// use nnlut_core::ApproxNet;
///
/// // ReLU(x) itself: one neuron, m=1, n=1, b=0, c=0.
/// let net = ApproxNet::from_params(vec![1.0], vec![1.0], vec![0.0], 0.0);
/// assert_eq!(net.eval(-2.0), 0.0);
/// assert_eq!(net.eval(3.0), 3.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct ApproxNet {
    m: Vec<f32>,
    n: Vec<f32>,
    b: Vec<f32>,
    c: f32,
}

impl ApproxNet {
    /// Builds a network from explicit parameters.
    ///
    /// # Panics
    ///
    /// Panics if the parameter vectors have different lengths or are empty.
    pub fn from_params(m: Vec<f32>, n: Vec<f32>, b: Vec<f32>, c: f32) -> Self {
        assert!(
            !m.is_empty() && m.len() == n.len() && n.len() == b.len(),
            "parameter vectors must be equal-length and non-empty"
        );
        Self { m, n, b, c }
    }

    /// Number of hidden neurons `H`.
    pub fn hidden(&self) -> usize {
        self.m.len()
    }

    /// Second-layer weights `m_j`.
    pub fn second_layer(&self) -> &[f32] {
        &self.m
    }

    /// First-layer weights `n_j`.
    pub fn first_layer_weights(&self) -> &[f32] {
        &self.n
    }

    /// First-layer biases `b_j`.
    pub fn first_layer_biases(&self) -> &[f32] {
        &self.b
    }

    /// Output bias `c`.
    pub fn output_bias(&self) -> f32 {
        self.c
    }

    /// Forward pass.
    pub fn eval(&self, x: f32) -> f32 {
        let mut acc = self.c;
        for j in 0..self.m.len() {
            let z = self.n[j] * x + self.b[j];
            if z > 0.0 {
                acc += self.m[j] * z;
            }
        }
        acc
    }

    /// Forward pass in `f64` (used when validating the exactness of the
    /// LUT conversion, to separate algorithmic error from f32 rounding).
    pub fn eval_f64(&self, x: f64) -> f64 {
        let mut acc = self.c as f64;
        for j in 0..self.m.len() {
            let z = self.n[j] as f64 * x + self.b[j] as f64;
            if z > 0.0 {
                acc += self.m[j] as f64 * z;
            }
        }
        acc
    }

    /// The breakpoint `-b_j/n_j` of neuron `j`, or `None` for a dead neuron
    /// (`n_j == 0`, which contributes a constant).
    pub fn breakpoint(&self, j: usize) -> Option<f32> {
        if self.n[j] == 0.0 {
            None
        } else {
            Some(-self.b[j] / self.n[j])
        }
    }

    /// Applies the affine input change-of-variables `z = (x − lo)/(hi − lo)`
    /// in reverse: given a net trained on normalized inputs `z`, returns the
    /// equivalent net over raw inputs `x`.
    ///
    /// `NN_z((x − lo)/w) == NN_x(x)` exactly (up to f32 rounding), because
    /// `n_z·z + b_z = (n_z/w)·x + (b_z − n_z·lo/w)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    pub fn denormalized(&self, lo: f32, hi: f32) -> Self {
        assert!(lo < hi, "denormalized requires lo < hi");
        let w = hi - lo;
        let n: Vec<f32> = self.n.iter().map(|&nz| nz / w).collect();
        let b: Vec<f32> = self
            .b
            .iter()
            .zip(&self.n)
            .map(|(&bz, &nz)| bz - nz * lo / w)
            .collect();
        Self {
            m: self.m.clone(),
            n,
            b,
            c: self.c,
        }
    }

    pub(crate) fn params_mut(&mut self) -> (&mut [f32], &mut [f32], &mut [f32], &mut f32) {
        (&mut self.m, &mut self.n, &mut self.b, &mut self.c)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_relu_neuron() {
        let net = ApproxNet::from_params(vec![2.0], vec![1.0], vec![-1.0], 0.5);
        assert_eq!(net.eval(0.0), 0.5); // ReLU(-1) = 0
        assert_eq!(net.eval(2.0), 2.5); // 2*ReLU(1) + 0.5
        assert_eq!(net.breakpoint(0), Some(1.0));
    }

    #[test]
    fn dead_neuron_contributes_constant() {
        // n = 0, b = 3 ⇒ ReLU(3) = 3 always.
        let net = ApproxNet::from_params(vec![0.5], vec![0.0], vec![3.0], 0.0);
        assert_eq!(net.eval(-100.0), 1.5);
        assert_eq!(net.eval(100.0), 1.5);
        assert_eq!(net.breakpoint(0), None);
    }

    #[test]
    fn eval_is_continuous_at_breakpoint() {
        let net = ApproxNet::from_params(vec![1.0, -0.5], vec![1.0, -2.0], vec![0.0, 1.0], 0.1);
        for j in 0..net.hidden() {
            let d = net.breakpoint(j).unwrap();
            let eps = 1e-4;
            let gap = (net.eval(d - eps) - net.eval(d + eps)).abs();
            assert!(gap < 1e-2, "discontinuity {gap} at breakpoint {d}");
        }
    }

    #[test]
    fn denormalized_matches_normalized_eval() {
        let (lo, hi) = (-256.0f32, 0.0f32);
        let net_z = ApproxNet::from_params(
            vec![1.0, -2.0, 0.3],
            vec![4.0, -1.5, 0.0],
            vec![-1.0, 0.75, 2.0],
            0.25,
        );
        let net_x = net_z.denormalized(lo, hi);
        for i in 0..=32 {
            let x = lo + (hi - lo) * i as f32 / 32.0;
            let z = (x - lo) / (hi - lo);
            let want = net_z.eval(z);
            let got = net_x.eval(x);
            assert!(
                (want - got).abs() <= 1e-4 * (1.0 + want.abs()),
                "x={x}: {want} vs {got}"
            );
        }
    }

    #[test]
    #[should_panic(expected = "equal-length")]
    fn mismatched_params_panic() {
        let _ = ApproxNet::from_params(vec![1.0], vec![1.0, 2.0], vec![0.0], 0.0);
    }

    #[test]
    fn eval_f64_agrees_with_eval() {
        let net = ApproxNet::from_params(vec![1.0, 2.0], vec![0.5, -0.25], vec![0.1, 0.2], -0.3);
        for i in -10..10 {
            let x = i as f32 * 0.7;
            assert!((net.eval(x) as f64 - net.eval_f64(x as f64)).abs() < 1e-5);
        }
    }
}
