//! **AB-BP** — breakpoint-placement ablation (paper §3.1): pre-determined
//! Linear vs Exponential breakpoint modes vs NN-LUT's learned breakpoints.
//!
//! Run: `cargo run --release -p nnlut-bench --bin ablation_breakpoints`

#![allow(clippy::type_complexity)] // the panel table type is local and self-describing

use nnlut_bench::{exponential_kit, linear_kit, paper_kit};
use nnlut_core::metrics::mean_abs_error;

fn main() {
    println!("== Ablation: breakpoint placement (L1 error, 16 entries) ==\n");
    let nn = paper_kit();
    let lin = linear_kit();
    let exp = exponential_kit();

    let panels: [(
        &str,
        fn(&nnlut_core::NnLutKit, f32) -> f32,
        fn(f32) -> f32,
        (f32, f32),
    ); 4] = [
        (
            "gelu",
            |k, x| k.gelu(x),
            |x| nnlut_core::funcs::gelu(x),
            (-5.0, 5.0),
        ),
        (
            "exp",
            |k, x| k.exp(x),
            |x| (x as f64).exp() as f32,
            (-12.0, 0.0),
        ),
        ("recip", |k, x| k.recip(x), |x| 1.0 / x, (1.0, 1024.0)),
        (
            "rsqrt",
            |k, x| k.inv_sqrt(x),
            |x| 1.0 / x.sqrt(),
            (0.01, 1024.0),
        ),
    ];

    println!(
        "{:<10}{:>16}{:>16}{:>16}",
        "function", "Linear mode", "Exponential", "NN-LUT (learned)"
    );
    for (name, eval, exact, range) in panels {
        let e_lin = mean_abs_error(|x| eval(&lin, x), exact, range, 8_000);
        let e_exp = mean_abs_error(|x| eval(&exp, x), exact, range, 8_000);
        let e_nn = mean_abs_error(|x| eval(&nn, x), exact, range, 8_000);
        println!("{name:<10}{e_lin:>16.6}{e_exp:>16.6}{e_nn:>16.6}");
    }
    println!("\nShape to check: Linear mode fails on the large-dynamic-range");
    println!("functions; Exponential mode fixes exactly those (it matches the");
    println!("power-law curvature) but is undefined on sign-crossing domains");
    println!("like GELU's — learned breakpoints are the only placement that");
    println!("handles every function with one mechanism (paper §3.1).");
}
