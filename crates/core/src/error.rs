//! Error types for LUT construction and training.

use std::error::Error;
use std::fmt;

/// Errors produced while constructing or training NN-LUT artifacts.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum CoreError {
    /// Breakpoints were not strictly finite or not sorted ascending.
    UnsortedBreakpoints,
    /// A LUT parameter (slope/intercept) was non-finite.
    NonFiniteParameter,
    /// Segment count does not equal breakpoint count + 1.
    SegmentCountMismatch {
        /// Number of segments supplied.
        segments: usize,
        /// Number of breakpoints supplied.
        breakpoints: usize,
    },
    /// A LUT needs at least one segment.
    EmptyTable,
    /// The requested entry count cannot be represented (needs ≥ 2 entries).
    TooFewEntries(usize),
    /// An invalid training domain (lo ≥ hi, or non-finite bounds).
    InvalidDomain(f32, f32),
    /// The exponential breakpoint mode requires a strictly positive domain.
    ExponentialModeNeedsPositiveDomain,
    /// Calibration was given no samples.
    NoCalibrationSamples,
    /// A serialized table could not be parsed (message names the line).
    ParseTable(String),
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::UnsortedBreakpoints => {
                write!(f, "breakpoints must be finite and sorted ascending")
            }
            CoreError::NonFiniteParameter => write!(f, "LUT parameter is not finite"),
            CoreError::SegmentCountMismatch {
                segments,
                breakpoints,
            } => write!(
                f,
                "expected {} segments for {breakpoints} breakpoints, got {segments}",
                breakpoints + 1
            ),
            CoreError::EmptyTable => write!(f, "a lookup table needs at least one segment"),
            CoreError::TooFewEntries(n) => {
                write!(f, "a lookup table needs at least 2 entries, got {n}")
            }
            CoreError::InvalidDomain(lo, hi) => {
                write!(
                    f,
                    "invalid domain ({lo}, {hi}): bounds must be finite with lo < hi"
                )
            }
            CoreError::ExponentialModeNeedsPositiveDomain => {
                write!(
                    f,
                    "exponential breakpoint mode requires a strictly positive domain"
                )
            }
            CoreError::NoCalibrationSamples => {
                write!(f, "calibration requires at least one captured sample")
            }
            CoreError::ParseTable(msg) => write!(f, "cannot parse table: {msg}"),
        }
    }
}

impl Error for CoreError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_lowercase_and_informative() {
        let e = CoreError::SegmentCountMismatch {
            segments: 3,
            breakpoints: 3,
        };
        let s = e.to_string();
        assert!(s.contains("expected 4 segments"));
        assert!(s.chars().next().unwrap().is_lowercase());
    }

    #[test]
    fn error_trait_object_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<CoreError>();
    }
}
