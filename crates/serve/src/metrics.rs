//! Serving metrics: what the operator of a heavy-traffic deployment would
//! watch — per-batch latency, queue depth at dispatch, padding efficiency
//! (overall and per length bucket), queue-wait percentiles, deadline
//! misses, overload rejections and end-to-end tokens/sec.
//!
//! # Bounded by design
//!
//! A long-lived server dispatches millions of batches, so [`ServeMetrics`]
//! keeps **O(sketch capacity) memory, not O(batches served)**: every
//! aggregate is a streaming count/sum/min/max counter, and percentiles
//! come from fixed-capacity [`QuantileSketch`] ring buffers over the most
//! recent observations. Recording a batch is O(members); taking a
//! snapshot ([`ServeMetrics::clone`]) copies a fixed-size struct and never
//! grows with uptime — the asynchronous server clones under its shared
//! lock and computes percentiles on the snapshot *outside* it.
//! [`ServeMetrics::approx_bytes`] is the self-reported footprint the soak
//! test and `bench_serve`'s `sustained` section pin down.

use std::time::Duration;

use crate::batcher::CloseReason;
use crate::trace::{Stage, TraceBreakdown};

/// Default number of recent samples each percentile sketch retains.
pub const DEFAULT_SKETCH_CAPACITY: usize = 512;

/// A fixed-capacity ring buffer percentile estimator.
///
/// Keeps the most recent `capacity` observations; a percentile query is
/// exact nearest-rank over that window. Until the window fills this
/// matches exact quantiles of *everything* observed; after that it is the
/// exact quantile of the **trailing window** — the sliding-window
/// semantics an operator dashboard wants, with memory and snapshot cost
/// independent of how long the server has been up.
///
/// Vendored by design: the offline workspace has no crates.io, and a ring
/// buffer (unlike P²) supports *arbitrary* percentile queries after the
/// fact, which is what the existing accessor API promises.
///
/// # Accuracy
///
/// For `n ≤ capacity` observations the estimator is **exact** (bit-equal
/// to nearest-rank over the sorted full history). For `n > capacity` it is
/// exact over the last `capacity` observations and carries no guarantee
/// about older ones — `tests/serve_metrics_props.rs` property-tests both
/// regimes against a sorted oracle.
///
/// # Examples
///
/// ```
/// use nnlut_serve::QuantileSketch;
/// use std::time::Duration;
///
/// let mut q = QuantileSketch::new(128);
/// for ms in [30u64, 10, 20] {
///     q.observe(Duration::from_millis(ms));
/// }
/// assert_eq!(q.percentile(50.0), Some(Duration::from_millis(20)));
/// assert_eq!(q.count(), 3);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QuantileSketch {
    /// Most recent observations, ring-ordered (query order is irrelevant:
    /// nearest-rank sorts a scratch copy).
    window: Vec<Duration>,
    /// Next write slot once the window is full.
    head: usize,
    /// Ring capacity (fixed at construction; the memory bound).
    capacity: usize,
    /// Total observations ever, including ones that fell off the window.
    count: u64,
}

impl QuantileSketch {
    /// An empty sketch retaining the most recent `capacity` observations
    /// (`0` is clamped to `1`).
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        Self {
            // Allocated up front: the fill phase must not reallocate
            // under a server's shared lock, and `approx_bytes`' bound
            // must match the real heap footprint exactly.
            window: Vec::with_capacity(capacity),
            head: 0,
            capacity,
            count: 0,
        }
    }

    /// Records one observation, evicting the oldest once full. O(1).
    pub fn observe(&mut self, sample: Duration) {
        if self.window.len() < self.capacity {
            self.window.push(sample);
        } else {
            self.window[self.head] = sample;
            self.head = (self.head + 1) % self.capacity;
        }
        self.count += 1;
    }

    /// Nearest-rank percentile over the retained window; `None` before
    /// any observation. O(capacity log capacity) — intended to run on a
    /// *snapshot*, never under a server's shared lock.
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `0.0..=100.0`.
    pub fn percentile(&self, p: f64) -> Option<Duration> {
        assert!((0.0..=100.0).contains(&p), "percentile {p} out of range");
        if self.window.is_empty() {
            return None;
        }
        let mut sorted = self.window.clone();
        sorted.sort_unstable();
        // Nearest-rank: ceil(p/100 · n), clamped to [1, n].
        let rank = ((p / 100.0) * sorted.len() as f64).ceil() as usize;
        Some(sorted[rank.clamp(1, sorted.len()) - 1])
    }

    /// Total observations ever recorded (not capped by capacity).
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Observations currently retained (`min(count, capacity)`).
    pub fn len(&self) -> usize {
        self.window.len()
    }

    /// True before the first observation.
    pub fn is_empty(&self) -> bool {
        self.window.is_empty()
    }

    /// The fixed retention capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Bytes this sketch can ever occupy (capacity, not fill level — the
    /// memory *bound*, so the figure is stable from the first batch).
    pub fn approx_bytes(&self) -> usize {
        std::mem::size_of::<Self>() + self.capacity * std::mem::size_of::<Duration>()
    }

    /// The retained window in observation order (oldest first).
    fn ordered_window(&self) -> impl Iterator<Item = Duration> + '_ {
        // Before the ring wraps, insertion order *is* slice order; after,
        // the oldest retained sample sits at `head`.
        let (older, newer) = self.window.split_at(if self.window.len() < self.capacity {
            0
        } else {
            self.head
        });
        newer.iter().chain(older.iter()).copied()
    }

    /// Folds another sketch into this one: `other`'s retained window is
    /// replayed in observation order (so this window ends with the merged
    /// recency semantics a rollup wants), and observations that had
    /// already fallen off `other`'s window still count toward
    /// [`QuantileSketch::count`]. Merged percentiles are approximate —
    /// they interleave the two windows by replay order, not by true
    /// arrival time.
    pub fn merge(&mut self, other: &QuantileSketch) {
        for sample in other.ordered_window() {
            self.observe(sample);
        }
        self.count += other.count - other.window.len() as u64;
    }
}

/// One dispatched batch, as observed by the server — the *event* fed to
/// [`ServeMetrics::record`]. The metrics fold it into streaming aggregates
/// and drop it; nothing retains these per batch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BatchRecord {
    /// Sequences packed into the batch.
    pub sequences: usize,
    /// Real (unpadded) tokens encoded.
    pub tokens: usize,
    /// Padded positions actually computed (`sequences × max_len`).
    pub padded_tokens: usize,
    /// Queue depth at the moment the batch was packed (including its own
    /// members) — the backlog signal.
    pub queue_depth: usize,
    /// Wall-clock encode latency of the batch.
    pub latency: Duration,
    /// Length bucket the batch was packed from (0 for a FIFO batcher).
    pub bucket: usize,
    /// Why the batch closed.
    pub reason: CloseReason,
    /// How long each member waited in the queue before dispatch.
    pub queue_waits: Vec<Duration>,
}

/// Per-bucket padding/throughput aggregate (see
/// [`ServeMetrics::per_bucket`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct BucketStats {
    /// Batches dispatched from this bucket.
    pub batches: usize,
    /// Sequences those batches carried.
    pub sequences: usize,
    /// Real tokens encoded.
    pub tokens: usize,
    /// Padded positions computed.
    pub padded_tokens: usize,
}

impl BucketStats {
    /// Fraction of this bucket's computed positions that were real tokens
    /// (0 before any batch has run).
    pub fn padding_efficiency(&self) -> f64 {
        if self.padded_tokens == 0 {
            return 0.0;
        }
        self.tokens as f64 / self.padded_tokens as f64
    }
}

fn reason_index(reason: CloseReason) -> usize {
    match reason {
        CloseReason::Full => 0,
        CloseReason::Aged => 1,
        CloseReason::Deadline => 2,
        CloseReason::Drain => 3,
        CloseReason::Decode => 4,
    }
}

/// Streaming serving metrics over every batch a server has dispatched.
///
/// Memory is **O(sketch capacity + bucket count)** — constant for a given
/// configuration, regardless of how many batches have been served. See
/// the module docs for the design.
#[derive(Debug, Clone)]
pub struct ServeMetrics {
    batches: u64,
    sequences: usize,
    tokens: usize,
    padded_tokens: usize,
    total_latency: Duration,
    min_latency: Option<Duration>,
    max_latency: Option<Duration>,
    peak_queue_depth: usize,
    close_counts: [u64; 5],
    /// Indexed by bucket; extends to the highest bucket that has
    /// dispatched a batch (bounded by the policy's bucket count).
    per_bucket: Vec<BucketStats>,
    deadline_misses: usize,
    overload_rejections: usize,
    latency_sketch: QuantileSketch,
    queue_wait_sketch: QuantileSketch,
    missed_wait_sketch: QuantileSketch,
    /// Per-lifecycle-stage latency sketches, indexed like
    /// [`Stage::ALL`], fed from resolved requests' [`TraceBreakdown`]s.
    stage_sketches: [QuantileSketch; Stage::COUNT],
    /// Total time attributed to each stage across every folded
    /// breakdown (the Prometheus `_sum` series).
    stage_totals: [Duration; Stage::COUNT],
    /// Decode batches dispatched (generation steps, not encodes).
    decode_batches: u64,
    /// Single-token decode steps run across every decode batch.
    decode_steps: u64,
    /// Total attention area of decode batches (`Σ context_len + 1`).
    decode_context_tokens: u64,
    /// Wall-clock time spent running decode batches.
    decode_latency: Duration,
    /// Tokens emitted to generation tickets (including each prefill's
    /// first token).
    generated_tokens: u64,
    /// Generations that ran to completion (emitted their full budget).
    generations_completed: u64,
    /// Gap between consecutive token emissions of a sequence — the
    /// inter-token latency the decode-priority close policy protects.
    inter_token_sketch: QuantileSketch,
}

impl Default for ServeMetrics {
    fn default() -> Self {
        Self::new()
    }
}

impl ServeMetrics {
    /// No batches yet, sketches at [`DEFAULT_SKETCH_CAPACITY`].
    pub fn new() -> Self {
        Self::with_sketch_capacity(DEFAULT_SKETCH_CAPACITY)
    }

    /// No batches yet, every percentile sketch retaining the most recent
    /// `capacity` observations.
    pub fn with_sketch_capacity(capacity: usize) -> Self {
        Self {
            batches: 0,
            sequences: 0,
            tokens: 0,
            padded_tokens: 0,
            total_latency: Duration::ZERO,
            min_latency: None,
            max_latency: None,
            peak_queue_depth: 0,
            close_counts: [0; 5],
            per_bucket: Vec::new(),
            deadline_misses: 0,
            overload_rejections: 0,
            latency_sketch: QuantileSketch::new(capacity),
            queue_wait_sketch: QuantileSketch::new(capacity),
            missed_wait_sketch: QuantileSketch::new(capacity),
            stage_sketches: std::array::from_fn(|_| QuantileSketch::new(capacity)),
            stage_totals: [Duration::ZERO; Stage::COUNT],
            decode_batches: 0,
            decode_steps: 0,
            decode_context_tokens: 0,
            decode_latency: Duration::ZERO,
            generated_tokens: 0,
            generations_completed: 0,
            inter_token_sketch: QuantileSketch::new(capacity),
        }
    }

    /// Folds one dispatched decode batch into the aggregates: `steps`
    /// sequences advanced one token each over a total attention area of
    /// `context_tokens`, in `latency` wall-clock, closed for `reason`.
    pub fn record_decode_batch(
        &mut self,
        steps: usize,
        context_tokens: usize,
        latency: Duration,
        reason: CloseReason,
    ) {
        self.decode_batches += 1;
        self.decode_steps += steps as u64;
        self.decode_context_tokens += context_tokens as u64;
        self.decode_latency += latency;
        self.close_counts[reason_index(reason)] += 1;
    }

    /// Records one token emitted to a generation ticket. `gap` is the
    /// time since the same sequence's previous token (`None` for its
    /// first token, which has no predecessor).
    pub fn record_token_emitted(&mut self, gap: Option<Duration>) {
        self.generated_tokens += 1;
        if let Some(g) = gap {
            self.inter_token_sketch.observe(g);
        }
    }

    /// Records one generation that emitted its full token budget.
    pub fn record_generation_complete(&mut self) {
        self.generations_completed += 1;
    }

    /// Folds one resolved request's per-stage breakdown into the stage
    /// sketches. Stages with zero attributed time (untaken paths like
    /// `Requeued` on a fault-free request) are skipped, so each stage's
    /// sketch holds only requests that actually passed through it.
    pub fn record_stages(&mut self, breakdown: &TraceBreakdown) {
        for stage in Stage::ALL {
            let d = breakdown.stage(stage);
            if !d.is_zero() {
                self.stage_sketches[stage.index()].observe(d);
                self.stage_totals[stage.index()] += d;
            }
        }
    }

    /// Folds one dispatched batch into the aggregates. O(members), no
    /// allocation beyond the first touch of a new bucket index.
    pub fn record(&mut self, record: BatchRecord) {
        self.batches += 1;
        self.sequences += record.sequences;
        self.tokens += record.tokens;
        self.padded_tokens += record.padded_tokens;
        self.total_latency += record.latency;
        self.min_latency = Some(
            self.min_latency
                .map_or(record.latency, |m| m.min(record.latency)),
        );
        self.max_latency = Some(
            self.max_latency
                .map_or(record.latency, |m| m.max(record.latency)),
        );
        self.peak_queue_depth = self.peak_queue_depth.max(record.queue_depth);
        self.close_counts[reason_index(record.reason)] += 1;
        if record.bucket >= self.per_bucket.len() {
            self.per_bucket
                .resize(record.bucket + 1, BucketStats::default());
        }
        let b = &mut self.per_bucket[record.bucket];
        b.batches += 1;
        b.sequences += record.sequences;
        b.tokens += record.tokens;
        b.padded_tokens += record.padded_tokens;
        self.latency_sketch.observe(record.latency);
        for wait in record.queue_waits {
            self.queue_wait_sketch.observe(wait);
        }
    }

    /// Records one request expired unserved at its deadline, after
    /// waiting `waited` in the queue.
    pub fn record_deadline_miss(&mut self, waited: Duration) {
        self.deadline_misses += 1;
        self.missed_wait_sketch.observe(waited);
    }

    /// Records one request rejected at the door by the backpressure
    /// watermark ([`crate::ServePolicy`]); it was never queued.
    pub fn record_overload_rejection(&mut self) {
        self.overload_rejections += 1;
    }

    /// Batches dispatched so far.
    pub fn batches_served(&self) -> u64 {
        self.batches
    }

    /// Sequences dispatched so far (across every batch).
    pub fn total_sequences(&self) -> usize {
        self.sequences
    }

    /// Requests that expired unserved at their deadline.
    pub fn deadline_misses(&self) -> usize {
        self.deadline_misses
    }

    /// Requests rejected at the door by the backpressure watermark.
    pub fn overload_rejections(&self) -> usize {
        self.overload_rejections
    }

    /// Total real tokens encoded.
    pub fn total_tokens(&self) -> usize {
        self.tokens
    }

    /// Total wall-clock time spent encoding.
    pub fn total_latency(&self) -> Duration {
        self.total_latency
    }

    /// Fastest batch encode so far (`None` before any batch).
    pub fn min_latency(&self) -> Option<Duration> {
        self.min_latency
    }

    /// Slowest batch encode so far (`None` before any batch).
    pub fn max_latency(&self) -> Option<Duration> {
        self.max_latency
    }

    /// End-to-end throughput in real tokens per second (0 before any
    /// batch has run).
    pub fn tokens_per_sec(&self) -> f64 {
        let secs = self.total_latency.as_secs_f64();
        if secs <= 0.0 {
            return 0.0;
        }
        self.tokens as f64 / secs
    }

    /// Fraction of computed positions that were real tokens (1.0 = no
    /// padding waste; 0 before any batch has run).
    pub fn padding_efficiency(&self) -> f64 {
        if self.padded_tokens == 0 {
            return 0.0;
        }
        self.tokens as f64 / self.padded_tokens as f64
    }

    /// Padding/throughput aggregates per length bucket, indexed by
    /// bucket. The slice extends only to the **highest bucket that has
    /// dispatched a batch** — interior idle buckets report zeros, but
    /// trailing idle buckets are omitted (the metrics don't know the
    /// policy's bucket count), so treat an out-of-range index as "no
    /// traffic yet" rather than indexing unchecked. Empty before any
    /// batch has run.
    pub fn per_bucket(&self) -> Vec<BucketStats> {
        self.per_bucket.clone()
    }

    /// How many batches closed for `reason`.
    pub fn closes_for(&self, reason: CloseReason) -> usize {
        self.close_counts[reason_index(reason)] as usize
    }

    /// Batch-latency percentile — nearest-rank over the most recent
    /// [`ServeMetrics::sketch_capacity`] batches (exact over the full
    /// history until the window fills); `None` before any batch has run.
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `0.0..=100.0`.
    pub fn latency_percentile(&self, p: f64) -> Option<Duration> {
        self.latency_sketch.percentile(p)
    }

    /// Queue-wait percentile over the most recent *dispatched* requests'
    /// time in queue (sliding window, see [`QuantileSketch`]); `None`
    /// before any request was served. Expired requests' waits are tracked
    /// separately — see [`ServeMetrics::missed_wait_percentile`].
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `0.0..=100.0`.
    pub fn queue_wait_percentile(&self, p: f64) -> Option<Duration> {
        self.queue_wait_sketch.percentile(p)
    }

    /// How long recently expired requests had waited when they were
    /// culled (sliding-window nearest-rank percentile); `None` before any
    /// deadline miss. The gap between this and
    /// [`ServeMetrics::queue_wait_percentile`] tells an operator whether
    /// deadlines die to backlog or to tight budgets.
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `0.0..=100.0`.
    pub fn missed_wait_percentile(&self, p: f64) -> Option<Duration> {
        self.missed_wait_sketch.percentile(p)
    }

    /// Per-stage latency percentile over recently resolved requests that
    /// passed through `stage` (sliding window, see [`QuantileSketch`]);
    /// `None` before any such request.
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `0.0..=100.0`.
    pub fn stage_percentile(&self, stage: Stage, p: f64) -> Option<Duration> {
        self.stage_sketches[stage.index()].percentile(p)
    }

    /// How many folded breakdowns passed through `stage`.
    pub fn stage_count(&self, stage: Stage) -> u64 {
        self.stage_sketches[stage.index()].count()
    }

    /// Total time attributed to `stage` across every folded breakdown.
    pub fn stage_total(&self, stage: Stage) -> Duration {
        self.stage_totals[stage.index()]
    }

    /// Largest queue depth seen at dispatch time.
    pub fn peak_queue_depth(&self) -> usize {
        self.peak_queue_depth
    }

    /// Decode batches dispatched so far.
    pub fn decode_batches(&self) -> u64 {
        self.decode_batches
    }

    /// Single-token decode steps run so far.
    pub fn decode_steps(&self) -> u64 {
        self.decode_steps
    }

    /// Mean decode batch width (steps per decode batch; 0 before any).
    pub fn decode_batch_width(&self) -> f64 {
        if self.decode_batches == 0 {
            return 0.0;
        }
        self.decode_steps as f64 / self.decode_batches as f64
    }

    /// Generation throughput in decode steps per second of decode
    /// wall-clock (0 before any decode batch has run).
    pub fn decode_steps_per_sec(&self) -> f64 {
        let secs = self.decode_latency.as_secs_f64();
        if secs <= 0.0 {
            return 0.0;
        }
        self.decode_steps as f64 / secs
    }

    /// Tokens emitted to generation tickets so far.
    pub fn generated_tokens(&self) -> u64 {
        self.generated_tokens
    }

    /// Generations that emitted their full token budget.
    pub fn generations_completed(&self) -> u64 {
        self.generations_completed
    }

    /// Inter-token latency percentile over recently emitted tokens
    /// (sliding window, see [`QuantileSketch`]); `None` until some
    /// sequence has emitted at least two tokens.
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `0.0..=100.0`.
    pub fn inter_token_percentile(&self, p: f64) -> Option<Duration> {
        self.inter_token_sketch.percentile(p)
    }

    /// The retention capacity of each percentile sketch.
    pub fn sketch_capacity(&self) -> usize {
        self.latency_sketch.capacity()
    }

    /// Self-reported memory footprint: the bytes this struct can ever
    /// occupy, counting every sketch at full *capacity* (not fill level)
    /// and the per-bucket table at its current length. The figure is a
    /// function of configuration (sketch capacity, bucket count), **not**
    /// of batches served — the soak test and `bench_serve`'s `sustained`
    /// section assert exactly that.
    pub fn approx_bytes(&self) -> usize {
        std::mem::size_of::<Self>()
            + self.latency_sketch.approx_bytes()
            + self.queue_wait_sketch.approx_bytes()
            + self.missed_wait_sketch.approx_bytes()
            + self.inter_token_sketch.approx_bytes()
            + self
                .stage_sketches
                .iter()
                .map(|s| s.approx_bytes())
                .sum::<usize>()
            + self.per_bucket.len() * std::mem::size_of::<BucketStats>()
    }

    /// Folds another server's metrics into this one — the cross-replica
    /// rollup the sharded layer's `/metrics` endpoint reports. Counters,
    /// totals and per-bucket tables add; min/max/peak combine; percentile
    /// sketches merge **approximately** (each replica's retained window is
    /// replayed into this one, so recency interleaving is by replay order,
    /// not true arrival time — see [`QuantileSketch::merge`]). Note that
    /// [`ServeMetrics::tokens_per_sec`] on a merged snapshot divides by
    /// the *sum* of per-replica encode time, which undercounts aggregate
    /// throughput when replicas encode concurrently.
    pub fn merge(&mut self, other: &ServeMetrics) {
        self.batches += other.batches;
        self.sequences += other.sequences;
        self.tokens += other.tokens;
        self.padded_tokens += other.padded_tokens;
        self.total_latency += other.total_latency;
        self.min_latency = match (self.min_latency, other.min_latency) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        };
        self.max_latency = match (self.max_latency, other.max_latency) {
            (Some(a), Some(b)) => Some(a.max(b)),
            (a, b) => a.or(b),
        };
        self.peak_queue_depth = self.peak_queue_depth.max(other.peak_queue_depth);
        for (mine, theirs) in self.close_counts.iter_mut().zip(other.close_counts) {
            *mine += theirs;
        }
        if other.per_bucket.len() > self.per_bucket.len() {
            self.per_bucket
                .resize(other.per_bucket.len(), BucketStats::default());
        }
        for (mine, theirs) in self.per_bucket.iter_mut().zip(&other.per_bucket) {
            mine.batches += theirs.batches;
            mine.sequences += theirs.sequences;
            mine.tokens += theirs.tokens;
            mine.padded_tokens += theirs.padded_tokens;
        }
        self.deadline_misses += other.deadline_misses;
        self.overload_rejections += other.overload_rejections;
        self.latency_sketch.merge(&other.latency_sketch);
        self.queue_wait_sketch.merge(&other.queue_wait_sketch);
        self.missed_wait_sketch.merge(&other.missed_wait_sketch);
        for (mine, theirs) in self.stage_sketches.iter_mut().zip(&other.stage_sketches) {
            mine.merge(theirs);
        }
        for (mine, theirs) in self.stage_totals.iter_mut().zip(other.stage_totals) {
            *mine += theirs;
        }
        self.decode_batches += other.decode_batches;
        self.decode_steps += other.decode_steps;
        self.decode_context_tokens += other.decode_context_tokens;
        self.decode_latency += other.decode_latency;
        self.generated_tokens += other.generated_tokens;
        self.generations_completed += other.generations_completed;
        self.inter_token_sketch.merge(&other.inter_token_sketch);
    }

    /// One-line human summary (the bench and the examples print this).
    pub fn summary(&self) -> String {
        let p50 = self.latency_percentile(50.0).unwrap_or_default();
        let p95 = self.latency_percentile(95.0).unwrap_or_default();
        let w50 = self.queue_wait_percentile(50.0).unwrap_or_default();
        let w95 = self.queue_wait_percentile(95.0).unwrap_or_default();
        format!(
            "{} batches · {} tokens · {:.1} tok/s · p50 {:.2} ms · p95 {:.2} ms · wait p50 {:.2} ms · wait p95 {:.2} ms · padding eff {:.2} · peak queue {} · deadline misses {} · overload rejections {}",
            self.batches,
            self.tokens,
            self.tokens_per_sec(),
            p50.as_secs_f64() * 1e3,
            p95.as_secs_f64() * 1e3,
            w50.as_secs_f64() * 1e3,
            w95.as_secs_f64() * 1e3,
            self.padding_efficiency(),
            self.peak_queue_depth,
            self.deadline_misses,
            self.overload_rejections,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(tokens: usize, padded: usize, ms: u64) -> BatchRecord {
        BatchRecord {
            sequences: 2,
            tokens,
            padded_tokens: padded,
            queue_depth: 5,
            latency: Duration::from_millis(ms),
            bucket: 0,
            reason: CloseReason::Drain,
            queue_waits: vec![Duration::from_millis(ms / 2); 2],
        }
    }

    #[test]
    fn empty_metrics_are_zero() {
        let m = ServeMetrics::new();
        assert_eq!(m.tokens_per_sec(), 0.0);
        assert_eq!(m.padding_efficiency(), 0.0);
        assert_eq!(m.latency_percentile(50.0), None);
        assert_eq!(m.queue_wait_percentile(50.0), None);
        assert_eq!(m.peak_queue_depth(), 0);
        assert_eq!(m.deadline_misses(), 0);
        assert_eq!(m.overload_rejections(), 0);
        assert_eq!(m.batches_served(), 0);
        assert_eq!(m.min_latency(), None);
        assert_eq!(m.max_latency(), None);
        assert!(m.per_bucket().is_empty());
    }

    #[test]
    fn throughput_and_efficiency() {
        let mut m = ServeMetrics::new();
        m.record(rec(100, 125, 500));
        m.record(rec(100, 175, 500));
        assert!((m.tokens_per_sec() - 200.0).abs() < 1e-9);
        assert!((m.padding_efficiency() - 200.0 / 300.0).abs() < 1e-9);
        assert_eq!(m.total_tokens(), 200);
        assert_eq!(m.total_sequences(), 4);
        assert_eq!(m.peak_queue_depth(), 5);
        assert_eq!(m.batches_served(), 2);
        assert_eq!(m.min_latency(), Some(Duration::from_millis(500)));
        assert_eq!(m.max_latency(), Some(Duration::from_millis(500)));
    }

    #[test]
    fn percentiles_nearest_rank() {
        let mut m = ServeMetrics::new();
        for ms in [10u64, 20, 30, 40] {
            m.record(rec(1, 1, ms));
        }
        assert_eq!(m.latency_percentile(50.0), Some(Duration::from_millis(20)));
        assert_eq!(m.latency_percentile(95.0), Some(Duration::from_millis(40)));
        assert_eq!(m.latency_percentile(0.0), Some(Duration::from_millis(10)));
        assert_eq!(m.latency_percentile(100.0), Some(Duration::from_millis(40)));
        // Queue waits are half the latency in `rec`, two members each.
        assert_eq!(
            m.queue_wait_percentile(50.0),
            Some(Duration::from_millis(10))
        );
        assert_eq!(
            m.queue_wait_percentile(100.0),
            Some(Duration::from_millis(20))
        );
    }

    #[test]
    fn per_bucket_splits_padding_efficiency() {
        let mut m = ServeMetrics::new();
        m.record(BatchRecord {
            bucket: 0,
            ..rec(10, 10, 5)
        });
        m.record(BatchRecord {
            bucket: 2,
            ..rec(30, 60, 5)
        });
        let stats = m.per_bucket();
        assert_eq!(stats.len(), 3);
        assert_eq!(stats[0].batches, 1);
        assert!((stats[0].padding_efficiency() - 1.0).abs() < 1e-12);
        assert_eq!(stats[1], BucketStats::default());
        assert!((stats[2].padding_efficiency() - 0.5).abs() < 1e-12);
        assert_eq!(stats[2].sequences, 2);
    }

    #[test]
    fn deadline_misses_and_close_reasons_are_counted() {
        let mut m = ServeMetrics::new();
        m.record(BatchRecord {
            reason: CloseReason::Aged,
            ..rec(4, 4, 1)
        });
        m.record(rec(4, 4, 1));
        m.record_deadline_miss(Duration::from_millis(7));
        assert_eq!(m.deadline_misses(), 1);
        assert_eq!(
            m.missed_wait_percentile(50.0),
            Some(Duration::from_millis(7))
        );
        assert_eq!(ServeMetrics::new().missed_wait_percentile(95.0), None);
        assert_eq!(m.closes_for(CloseReason::Aged), 1);
        assert_eq!(m.closes_for(CloseReason::Drain), 1);
        assert_eq!(m.closes_for(CloseReason::Full), 0);
    }

    #[test]
    fn overload_rejections_are_counted() {
        let mut m = ServeMetrics::new();
        m.record_overload_rejection();
        m.record_overload_rejection();
        assert_eq!(m.overload_rejections(), 2);
        assert!(m.summary().contains("overload rejections 2"));
    }

    #[test]
    fn memory_is_bounded_by_sketch_capacity_not_batches() {
        let mut m = ServeMetrics::with_sketch_capacity(64);
        m.record(rec(1, 1, 1));
        let steady = m.approx_bytes();
        for ms in 0..10_000u64 {
            m.record(rec(1, 2, ms % 97));
            m.record_deadline_miss(Duration::from_millis(ms % 13));
        }
        assert_eq!(m.batches_served(), 10_001);
        assert_eq!(m.approx_bytes(), steady, "footprint grew with batches");
        assert_eq!(m.sketch_capacity(), 64);
        // The sliding window really slid: the sketch saw everything but
        // kept only the last 64 latencies.
        assert_eq!(m.latency_sketch.count(), 10_001);
        assert_eq!(m.latency_sketch.len(), 64);
    }

    #[test]
    fn sketch_is_exact_until_full_then_windows() {
        let mut q = QuantileSketch::new(4);
        for ms in [40u64, 10, 30, 20] {
            q.observe(Duration::from_millis(ms));
        }
        assert_eq!(q.percentile(50.0), Some(Duration::from_millis(20)));
        assert_eq!(q.percentile(100.0), Some(Duration::from_millis(40)));
        // Two more evict the oldest two (40, 10): window = {30, 20, 99, 98}.
        q.observe(Duration::from_millis(99));
        q.observe(Duration::from_millis(98));
        assert_eq!(q.percentile(100.0), Some(Duration::from_millis(99)));
        assert_eq!(q.percentile(0.0), Some(Duration::from_millis(20)));
        assert_eq!(q.count(), 6);
        assert_eq!(q.len(), 4);
    }

    #[test]
    fn zero_capacity_sketch_clamps_to_one() {
        let mut q = QuantileSketch::new(0);
        assert_eq!(q.capacity(), 1);
        q.observe(Duration::from_millis(3));
        q.observe(Duration::from_millis(9));
        assert_eq!(q.percentile(50.0), Some(Duration::from_millis(9)));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_percentile_panics() {
        ServeMetrics::new().latency_percentile(120.0);
    }

    #[test]
    fn merge_adds_counters_and_combines_extremes() {
        let mut a = ServeMetrics::new();
        a.record(BatchRecord {
            bucket: 1,
            ..rec(10, 20, 5)
        });
        a.record_overload_rejection();
        let mut b = ServeMetrics::new();
        b.record(BatchRecord {
            reason: CloseReason::Aged,
            ..rec(30, 30, 50)
        });
        b.record_deadline_miss(Duration::from_millis(3));
        a.merge(&b);
        assert_eq!(a.batches_served(), 2);
        assert_eq!(a.total_tokens(), 40);
        assert_eq!(a.total_sequences(), 4);
        assert_eq!(a.min_latency(), Some(Duration::from_millis(5)));
        assert_eq!(a.max_latency(), Some(Duration::from_millis(50)));
        assert_eq!(a.deadline_misses(), 1);
        assert_eq!(a.overload_rejections(), 1);
        assert_eq!(a.closes_for(CloseReason::Drain), 1);
        assert_eq!(a.closes_for(CloseReason::Aged), 1);
        // b's bucket-0 batch lands in the bucket table a already had.
        let buckets = a.per_bucket();
        assert_eq!(buckets[0].batches, 1);
        assert_eq!(buckets[1].batches, 1);
        // Merged sketches see both windows (max = b's 50 ms batch).
        assert_eq!(a.latency_percentile(100.0), Some(Duration::from_millis(50)));
        // Merging an empty snapshot is a no-op on extremes.
        a.merge(&ServeMetrics::new());
        assert_eq!(a.min_latency(), Some(Duration::from_millis(5)));
    }

    #[test]
    fn sketch_merge_preserves_total_count_and_window_order() {
        let mut a = QuantileSketch::new(4);
        let mut b = QuantileSketch::new(4);
        for ms in [1u64, 2, 3, 4, 5, 6] {
            b.observe(Duration::from_millis(ms)); // window {3,4,5,6}, count 6
        }
        a.merge(&b);
        assert_eq!(a.count(), 6, "evicted observations still count");
        assert_eq!(a.len(), 4);
        assert_eq!(a.percentile(0.0), Some(Duration::from_millis(3)));
        assert_eq!(a.percentile(100.0), Some(Duration::from_millis(6)));
        // Replay order is oldest-first: two more evict 3 then 4.
        a.observe(Duration::from_millis(9));
        a.observe(Duration::from_millis(9));
        assert_eq!(a.percentile(0.0), Some(Duration::from_millis(5)));
    }

    #[test]
    fn stage_sketches_record_and_merge() {
        let mut bd = TraceBreakdown {
            id: 1,
            stages: [Duration::ZERO; Stage::COUNT],
            total: Duration::from_millis(30),
            events: 3,
        };
        bd.stages[Stage::Queued.index()] = Duration::from_millis(10);
        bd.stages[Stage::Encoded.index()] = Duration::from_millis(20);

        let mut m = ServeMetrics::with_sketch_capacity(16);
        let empty = m.approx_bytes();
        m.record_stages(&bd);
        m.record_stages(&bd);
        assert_eq!(m.stage_count(Stage::Queued), 2);
        assert_eq!(m.stage_total(Stage::Encoded), Duration::from_millis(40));
        assert_eq!(
            m.stage_percentile(Stage::Queued, 50.0),
            Some(Duration::from_millis(10))
        );
        // Untaken stages record nothing.
        assert_eq!(m.stage_count(Stage::Requeued), 0);
        assert_eq!(m.stage_percentile(Stage::Requeued, 50.0), None);
        // Still configuration-pure.
        assert_eq!(m.approx_bytes(), empty);

        let mut rollup = ServeMetrics::with_sketch_capacity(16);
        rollup.merge(&m);
        assert_eq!(rollup.stage_count(Stage::Encoded), 2);
        assert_eq!(rollup.stage_total(Stage::Queued), Duration::from_millis(20));
    }

    #[test]
    fn summary_mentions_throughput() {
        let mut m = ServeMetrics::new();
        m.record(rec(50, 60, 100));
        let s = m.summary();
        assert!(s.contains("tok/s"), "{s}");
        assert!(s.contains("1 batches"), "{s}");
        assert!(s.contains("deadline misses 0"), "{s}");
    }
}
