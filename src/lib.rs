//! # NN-LUT
//!
//! A faithful, from-scratch Rust reproduction of **"NN-LUT: Neural
//! Approximation of Non-Linear Operations for Efficient Transformer
//! Inference"** (Yu et al., DAC 2022).
//!
//! NN-LUT trains a tiny one-hidden-layer ReLU network against a costly
//! non-linear function (GELU, exp, 1/x, 1/sqrt(x), ...) and then transforms
//! the trained network *exactly* into a first-order lookup table, so that a
//! single table-lookup plus one multiply-accumulate replaces the original
//! operation in hardware.
//!
//! This facade crate re-exports the whole workspace:
//!
//! * [`core`] — the paper's contribution: LUTs, the approximator network,
//!   training, the exact NN-to-LUT conversion, input scaling, precision
//!   modes, calibration and the Linear-LUT baseline.
//! * [`tensor`] — minimal dense linear algebra and INT8 quantization.
//! * [`ibert`] — the I-BERT integer-only baseline kernels.
//! * [`transformer`] — a BERT-style encoder with pluggable non-linearity
//!   backends plus the synthetic evaluation harness.
//! * [`serve`] — the serving layer: deterministic scoped thread pool,
//!   length-bucketed deadline-aware request batcher, and two front doors
//!   over the baked engines — the synchronous `LutServer` and the
//!   asynchronous `AsyncLutServer` (background worker, tickets,
//!   per-request deadlines) — with pooled results bit-identical to
//!   serial.
//! * [`hw`] — the 7 nm-class arithmetic-unit cost model (paper Table 4).
//! * [`npu`] — the cycle-level accelerator simulator (paper Table 5).
//!
//! The repository-level `README.md` quickstart and
//! `docs/ARCHITECTURE.md` (two-tier evaluation model, serving pipeline,
//! determinism contract) are the prose companions to these API docs.
//!
//! ## Quickstart
//!
//! ```
//! use nn_lut::core::{recipe, convert::nn_to_lut, funcs::TargetFunction};
//!
//! // Train a 16-entry NN-LUT for GELU with the paper's Table-1 recipe…
//! let net = recipe::train_for(TargetFunction::Gelu, 16, 42);
//! // …convert it exactly into a lookup table…
//! let lut = nn_to_lut(&net);
//! // …and use it as a drop-in replacement.
//! let approx = lut.eval(0.5_f32);
//! let exact = TargetFunction::Gelu.eval(0.5_f32);
//! assert!((approx - exact).abs() < 0.05);
//! ```

pub use nnlut_core as core;
pub use nnlut_hw as hw;
pub use nnlut_ibert as ibert;
pub use nnlut_npu as npu;
pub use nnlut_serve as serve;
pub use nnlut_tensor as tensor;
pub use nnlut_transformer as transformer;
