//! The synchronous serving front door.
//!
//! [`LutServer`] owns a frozen [`BertModel`] and an [`NnLutKit`] whose
//! engines were baked at construction (the kit bakes on assembly — see
//! `nnlut_core::ops`), so the steady state does no training, no
//! conversion, no allocation of table state: submit → pack → encode →
//! respond. "Synchronous" means the caller's thread drives the queue;
//! the parallelism lives *inside* a batch (row ranges across the pool),
//! which is the right shape for a single-tenant CPU deployment and keeps
//! the whole layer deterministic. For a concurrent front door with
//! deadlines and timed batch closes, see
//! [`AsyncLutServer`](crate::AsyncLutServer).

use std::time::Instant;

use nnlut_core::NnLutKit;
use nnlut_tensor::Matrix;
use nnlut_transformer::{BertModel, MatmulMode, Nonlinearity, TransformerConfig};

use crate::async_server::ServeError;
use crate::batcher::{BatchPolicy, Batcher, ServePolicy};
use crate::metrics::{BatchRecord, ServeMetrics};
use crate::pool::ThreadPool;

/// Identifier handed back by [`LutServer::submit`]; responses carry it so
/// callers can match answers to requests.
pub type RequestId = u64;

/// Server construction knobs.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Worker threads in the pool (`1` = fully serial reference path).
    pub threads: usize,
    /// Dynamic batching policy (area budget + length buckets).
    pub policy: BatchPolicy,
    /// Admission watermarks enforced by [`LutServer::try_submit`]
    /// (reject-at-door backpressure). Default: unbounded.
    pub admission: ServePolicy,
    /// GEMM precision of the transformer body.
    pub mode: MatmulMode,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            threads: 1,
            policy: BatchPolicy::default_policy(),
            admission: ServePolicy::unbounded(),
            mode: MatmulMode::F32,
        }
    }
}

/// One finished encode request.
#[derive(Debug, Clone)]
pub struct EncodeResponse {
    /// The id returned at submission.
    pub id: RequestId,
    /// Final hidden states, `(tokens × hidden)`, pad rows stripped.
    pub hidden: Matrix,
    /// Real token count of the request.
    pub tokens: usize,
    /// Wall-clock latency of the batch this request rode in (the
    /// synchronous server's per-request latency).
    pub latency: std::time::Duration,
}

/// Validates a request against a model's shape at the door: rejecting
/// here beats panicking mid-batch. Shared by the synchronous and
/// asynchronous front doors.
///
/// # Panics
///
/// Panics if `tokens` is empty, longer than the model's `max_seq`, or
/// contains an out-of-vocabulary id.
pub(crate) fn validate_request(cfg: &TransformerConfig, tokens: &[usize]) {
    assert!(!tokens.is_empty(), "cannot submit an empty request");
    assert!(
        tokens.len() <= cfg.max_seq,
        "request length {} exceeds max_seq {}",
        tokens.len(),
        cfg.max_seq
    );
    for &t in tokens {
        assert!(t < cfg.vocab, "token id {t} out of vocabulary");
    }
}

/// The deterministic batching inference server over the baked LUT engines.
///
/// The LUT kit is deployed on all three non-linearity sites
/// ([`Nonlinearity::all_lut`]) — the paper's "Altogether" configuration —
/// at whatever precision the kit was assembled with (FP32 / FP16 / INT32
/// baked engines). Pooled and serial servers produce **bit-identical**
/// responses; see the crate docs for the contract and
/// `tests/serve_determinism.rs` for the proof.
///
/// # Examples
///
/// Length-bucketed admission keeps padding tight while `drain` still
/// returns responses in submission order:
///
/// ```
/// use nnlut_core::{train::TrainConfig, NnLutKit};
/// use nnlut_serve::{BatchPolicy, LutServer, ServerConfig};
/// use nnlut_transformer::{BertModel, TransformerConfig};
///
/// let model = BertModel::new_synthetic(TransformerConfig::roberta_tiny(), 7);
/// let kit = NnLutKit::train_with(16, 7, &TrainConfig::fast());
/// let config = ServerConfig {
///     policy: BatchPolicy::bucketed(vec![4, 16]),
///     ..ServerConfig::default()
/// };
/// let mut server = LutServer::new(model, kit, config);
/// let long = server.submit(vec![1; 20]); // overflow bucket
/// let short = server.submit(vec![2, 3]); // ≤4 bucket
/// let responses = server.drain();
/// assert_eq!(responses[0].id, long);     // submission order restored
/// assert_eq!(responses[1].id, short);
/// assert!(server.metrics().padding_efficiency() == 1.0); // no mixed-length padding
/// ```
#[derive(Debug, Clone)]
pub struct LutServer {
    model: BertModel,
    nl: Nonlinearity,
    pool: ThreadPool,
    batcher: Batcher,
    admission: ServePolicy,
    mode: MatmulMode,
    metrics: ServeMetrics,
    next_id: RequestId,
}

impl LutServer {
    /// Builds a server around a frozen model and a kit with pre-baked
    /// engines.
    pub fn new(model: BertModel, kit: NnLutKit, config: ServerConfig) -> Self {
        Self::with_backend(model, Nonlinearity::all_lut(&kit), config)
    }

    /// Builds a server with an explicit per-site backend selection (e.g.
    /// the exact-FP32 baseline for accuracy A/B serving).
    ///
    /// # Panics
    ///
    /// Panics if `config.mode` is [`MatmulMode::Codebook`] and the model
    /// has no baked codebooks — rejecting the misconfiguration at the
    /// door instead of mid-batch.
    pub fn with_backend(model: BertModel, nl: Nonlinearity, config: ServerConfig) -> Self {
        crate::check_codebook_mode(&model, config.mode);
        Self {
            model,
            nl,
            pool: ThreadPool::new(config.threads),
            batcher: Batcher::new(config.policy),
            admission: config.admission,
            mode: config.mode,
            metrics: ServeMetrics::new(),
            next_id: 0,
        }
    }

    /// The served model.
    pub fn model(&self) -> &BertModel {
        &self.model
    }

    /// Worker threads in the pool.
    pub fn threads(&self) -> usize {
        self.pool.threads()
    }

    /// Requests waiting in the queue.
    pub fn queue_depth(&self) -> usize {
        self.batcher.queue_depth()
    }

    /// Requests waiting per length bucket.
    pub fn bucket_depths(&self) -> Vec<usize> {
        self.batcher.bucket_depths()
    }

    /// Metrics accumulated over every batch served so far.
    pub fn metrics(&self) -> &ServeMetrics {
        &self.metrics
    }

    /// Enqueues an encode request, returning its id. No work happens
    /// until [`LutServer::step`] or [`LutServer::drain`].
    ///
    /// # Panics
    ///
    /// Panics if `tokens` is empty, longer than the model's `max_seq`, or
    /// contains an out-of-vocabulary id (rejecting at the door beats
    /// panicking mid-batch).
    pub fn submit(&mut self, tokens: Vec<usize>) -> RequestId {
        self.try_submit(tokens)
            .expect("queue at backpressure watermark; use try_submit to handle Overloaded")
    }

    /// [`LutServer::submit`] with the [`ServePolicy`] backpressure
    /// watermark enforced as a recoverable error: a request that would
    /// push the queue past its depth or queued-area watermark returns
    /// [`ServeError::Overloaded`] (counted in the metrics) and the queue
    /// is untouched. Drain below the watermark and resubmit.
    ///
    /// # Panics
    ///
    /// Panics on the same malformed requests as [`LutServer::submit`] —
    /// backpressure is recoverable, a bad request is a caller bug.
    pub fn try_submit(&mut self, tokens: Vec<usize>) -> Result<RequestId, ServeError> {
        validate_request(self.model.config(), &tokens);
        let id = self.next_id;
        self.next_id += 1;
        let depth = self.batcher.queue_depth();
        if !self
            .admission
            .admits(depth + 1, self.batcher.queued_tokens() + tokens.len())
        {
            self.metrics.record_overload_rejection();
            return Err(ServeError::Overloaded {
                id,
                queue_depth: depth,
            });
        }
        self.batcher.push(id, tokens);
        Ok(id)
    }

    /// Packs and encodes **one** batch (from the bucket whose front
    /// request is oldest). Returns the batch's responses (in submission
    /// order within the batch), or `None` if the queue was empty.
    pub fn step(&mut self) -> Option<Vec<EncodeResponse>> {
        let depth = self.batcher.queue_depth();
        let closed = self.batcher.next_closed_batch()?;
        let start = Instant::now();
        let hidden = self
            .model
            .encode_batch(&closed.batch, &self.nl, self.mode, &self.pool);
        let latency = start.elapsed();
        self.metrics.record(BatchRecord {
            sequences: closed.batch.sequences(),
            tokens: closed.batch.tokens(),
            padded_tokens: closed.batch.padded_tokens(),
            queue_depth: depth,
            latency,
            bucket: closed.bucket,
            reason: closed.reason,
            queue_waits: closed.queue_waits,
        });
        Some(
            closed
                .ids
                .into_iter()
                .zip(hidden)
                .map(|(id, hidden)| EncodeResponse {
                    id,
                    tokens: hidden.rows(),
                    hidden,
                    latency,
                })
                .collect(),
        )
    }

    /// Drains the whole queue batch by batch, returning every response in
    /// submission order (buckets may interleave dispatch, so the drain
    /// re-sorts by id before returning).
    pub fn drain(&mut self) -> Vec<EncodeResponse> {
        let mut out = Vec::new();
        while let Some(mut responses) = self.step() {
            out.append(&mut responses);
        }
        out.sort_by_key(|r| r.id);
        out
    }

    /// Convenience: submit a whole workload, drain it, and hand back the
    /// responses (still in submission order).
    pub fn serve(&mut self, requests: Vec<Vec<usize>>) -> Vec<EncodeResponse> {
        for tokens in requests {
            self.submit(tokens);
        }
        self.drain()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nnlut_core::train::TrainConfig;
    use nnlut_transformer::TransformerConfig;

    fn tiny_server(threads: usize, policy: BatchPolicy) -> LutServer {
        let model = BertModel::new_synthetic(TransformerConfig::roberta_tiny(), 9);
        let kit = NnLutKit::train_with(16, 9, &TrainConfig::fast());
        LutServer::new(
            model,
            kit,
            ServerConfig {
                threads,
                policy,
                ..ServerConfig::default()
            },
        )
    }

    fn workload() -> Vec<Vec<usize>> {
        (0..7)
            .map(|r| {
                (0..(1 + (r * 11) % 23))
                    .map(|i| (i * 7 + r) % 128)
                    .collect()
            })
            .collect()
    }

    #[test]
    fn serve_returns_every_request_in_order_with_metrics() {
        let mut server = tiny_server(1, BatchPolicy::default_policy());
        let responses = server.serve(workload());
        assert_eq!(responses.len(), 7);
        for (i, r) in responses.iter().enumerate() {
            assert_eq!(r.id, i as u64);
            assert_eq!(r.hidden.shape(), (workload()[i].len(), 64));
            assert_eq!(r.tokens, workload()[i].len());
        }
        assert_eq!(server.queue_depth(), 0);
        assert!(server.metrics().total_tokens() > 0);
        assert!(server.metrics().tokens_per_sec() > 0.0);
        assert!(server.metrics().latency_percentile(95.0).is_some());
        assert!(server.metrics().queue_wait_percentile(95.0).is_some());
    }

    #[test]
    fn responses_do_not_depend_on_batch_policy() {
        // F32 body + masked attention: the same request must produce the
        // same bits whether it was served alone, packed FIFO, or packed
        // through length buckets.
        let batched = tiny_server(1, BatchPolicy::default_policy()).serve(workload());
        let unbatched = tiny_server(1, BatchPolicy::unbatched()).serve(workload());
        let bucketed = tiny_server(1, BatchPolicy::bucketed(vec![4, 12])).serve(workload());
        for ((a, b), c) in batched.iter().zip(&unbatched).zip(&bucketed) {
            assert_eq!(a.id, b.id);
            assert_eq!(a.hidden, b.hidden, "policy changed response {}", a.id);
            assert_eq!(a.id, c.id);
            assert_eq!(a.hidden, c.hidden, "buckets changed response {}", a.id);
        }
    }

    #[test]
    fn pooled_server_is_bit_identical_to_serial() {
        let serial = tiny_server(1, BatchPolicy::default_policy()).serve(workload());
        let pooled = tiny_server(4, BatchPolicy::default_policy()).serve(workload());
        for (a, b) in serial.iter().zip(&pooled) {
            for (x, y) in a.hidden.as_slice().iter().zip(b.hidden.as_slice()) {
                assert_eq!(x.to_bits(), y.to_bits(), "pooled diverged on {}", a.id);
            }
        }
    }

    #[test]
    fn step_serves_exactly_one_batch() {
        let mut server = tiny_server(
            1,
            BatchPolicy {
                max_batch: 2,
                max_padded_tokens: 4096,
                bucket_edges: Vec::new(),
            },
        );
        for tokens in workload() {
            server.submit(tokens);
        }
        let first = server.step().unwrap();
        assert_eq!(first.len(), 2);
        assert_eq!(server.queue_depth(), 5);
        assert!(server.metrics().batches_served() == 1);
    }

    #[test]
    fn try_submit_rejects_at_the_watermark_and_recovers() {
        let model = BertModel::new_synthetic(TransformerConfig::roberta_tiny(), 9);
        let kit = NnLutKit::train_with(16, 9, &TrainConfig::fast());
        let mut server = LutServer::new(
            model,
            kit,
            ServerConfig {
                admission: ServePolicy::with_max_queue_depth(2),
                ..ServerConfig::default()
            },
        );
        let a = server.try_submit(vec![1; 3]).unwrap();
        let b = server.try_submit(vec![2; 3]).unwrap();
        match server.try_submit(vec![3; 3]) {
            Err(ServeError::Overloaded { queue_depth, .. }) => assert_eq!(queue_depth, 2),
            other => panic!("expected Overloaded, got {other:?}"),
        }
        assert_eq!(server.metrics().overload_rejections(), 1);
        // Rejection left the queue untouched: both queued requests serve.
        let responses = server.drain();
        assert_eq!(
            responses.iter().map(|r| r.id).collect::<Vec<_>>(),
            vec![a, b]
        );
        // Below the watermark again: admission recovers.
        assert!(server.try_submit(vec![4; 3]).is_ok());
    }

    #[test]
    fn bucketed_drain_restores_submission_order() {
        let mut server = tiny_server(1, BatchPolicy::bucketed(vec![4]));
        // Alternate long/short so buckets dispatch out of id order.
        let lens = [20usize, 2, 18, 3, 16, 1];
        for len in lens {
            server.submit(vec![1; len]);
        }
        let responses = server.drain();
        let ids: Vec<RequestId> = responses.iter().map(|r| r.id).collect();
        assert_eq!(ids, vec![0, 1, 2, 3, 4, 5]);
        for (r, len) in responses.iter().zip(lens) {
            assert_eq!(r.tokens, len);
        }
        // Both buckets dispatched at least one batch.
        assert!(server.metrics().per_bucket().len() == 2);
    }

    #[test]
    #[should_panic(expected = "out of vocabulary")]
    fn submit_rejects_bad_tokens_at_the_door() {
        tiny_server(1, BatchPolicy::default_policy()).submit(vec![10_000]);
    }

    #[test]
    #[should_panic(expected = "exceeds max_seq")]
    fn submit_rejects_overlong_requests() {
        tiny_server(1, BatchPolicy::default_policy()).submit(vec![1; 65]);
    }
}
