//! The first-order lookup table of paper Eq. 4.
//!
//! ```text
//!          ⎧ s₁·x + t₁   if x < d₁
//! LUT(x) = ⎨ sᵢ·x + tᵢ   if dᵢ₋₁ ≤ x < dᵢ        (1 < i ≤ N−1)
//!          ⎩ s_N·x + t_N if x ≥ d_{N−1}
//! ```
//!
//! An `N`-entry table has `N` segments and `N−1` breakpoints. Hardware
//! evaluates it with a comparator tree (segment select), one multiplier and
//! one adder — see `nnlut-hw` for the cost model.

use crate::error::CoreError;

/// One first-order segment: `y = slope·x + intercept`.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Segment {
    /// The multiplicative approximation parameter `sᵢ`.
    pub slope: f32,
    /// The additive approximation parameter `tᵢ`.
    pub intercept: f32,
}

impl Segment {
    /// Creates a segment from its slope and intercept.
    pub fn new(slope: f32, intercept: f32) -> Self {
        Self { slope, intercept }
    }

    /// Evaluates `slope·x + intercept`.
    #[inline]
    pub fn eval(&self, x: f32) -> f32 {
        self.slope * x + self.intercept
    }
}

/// An `N`-entry first-order lookup table (paper Eq. 4).
///
/// Invariants (checked at construction):
///
/// * breakpoints are finite and sorted ascending (ties allowed — a trained
///   network can produce coincident breakpoints, yielding zero-width
///   segments that are never selected strictly inside),
/// * every slope/intercept is finite,
/// * `segments.len() == breakpoints.len() + 1 ≥ 1`.
///
/// # Examples
///
/// ```
/// use nnlut_core::{LookupTable, Segment};
///
/// // |x| as a 2-entry LUT with one breakpoint at 0.
/// let lut = LookupTable::new(
///     vec![0.0],
///     vec![Segment::new(-1.0, 0.0), Segment::new(1.0, 0.0)],
/// )?;
/// assert_eq!(lut.eval(-3.0), 3.0);
/// assert_eq!(lut.eval(4.0), 4.0);
/// # Ok::<(), nnlut_core::CoreError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct LookupTable {
    breakpoints: Vec<f32>,
    segments: Vec<Segment>,
}

impl LookupTable {
    /// Builds a table from breakpoints `{dᵢ}` and segments `{(sᵢ, tᵢ)}`.
    ///
    /// # Errors
    ///
    /// * [`CoreError::EmptyTable`] if `segments` is empty.
    /// * [`CoreError::SegmentCountMismatch`] unless
    ///   `segments.len() == breakpoints.len() + 1`.
    /// * [`CoreError::UnsortedBreakpoints`] if any breakpoint is non-finite
    ///   or the sequence decreases.
    /// * [`CoreError::NonFiniteParameter`] if any slope or intercept is
    ///   non-finite.
    pub fn new(breakpoints: Vec<f32>, segments: Vec<Segment>) -> Result<Self, CoreError> {
        if segments.is_empty() {
            return Err(CoreError::EmptyTable);
        }
        if segments.len() != breakpoints.len() + 1 {
            return Err(CoreError::SegmentCountMismatch {
                segments: segments.len(),
                breakpoints: breakpoints.len(),
            });
        }
        if breakpoints.iter().any(|d| !d.is_finite()) || breakpoints.windows(2).any(|w| w[0] > w[1])
        {
            return Err(CoreError::UnsortedBreakpoints);
        }
        if segments
            .iter()
            .any(|s| !s.slope.is_finite() || !s.intercept.is_finite())
        {
            return Err(CoreError::NonFiniteParameter);
        }
        Ok(Self {
            breakpoints,
            segments,
        })
    }

    /// Number of table entries `N` (= number of segments).
    pub fn entries(&self) -> usize {
        self.segments.len()
    }

    /// The sorted breakpoints `{dᵢ}` (length `N − 1`).
    pub fn breakpoints(&self) -> &[f32] {
        &self.breakpoints
    }

    /// The approximation parameters `{(sᵢ, tᵢ)}` (length `N`).
    pub fn segments(&self) -> &[Segment] {
        &self.segments
    }

    /// Index of the segment that handles `x` (Eq. 4 semantics: a point equal
    /// to a breakpoint belongs to the segment on its right).
    #[inline]
    pub fn segment_index(&self, x: f32) -> usize {
        // Number of breakpoints ≤ x. NaN compares false everywhere, so a NaN
        // input selects segment 0; `eval` then propagates NaN through the MAC.
        self.breakpoints.partition_point(|&d| d <= x)
    }

    /// Evaluates the table: segment select + one multiply + one add.
    #[inline]
    pub fn eval(&self, x: f32) -> f32 {
        self.segments[self.segment_index(x)].eval(x)
    }

    /// Evaluates the table for every element of `xs` in place.
    pub fn eval_slice(&self, xs: &mut [f32]) {
        for x in xs {
            *x = self.eval(*x);
        }
    }

    /// Maximum absolute value over all breakpoints and parameters — used to
    /// derive quantization scales for the INT32 mode.
    pub fn param_abs_max(&self) -> (f32, f32, f32) {
        let bp = self.breakpoints.iter().fold(0.0f32, |m, d| m.max(d.abs()));
        let s = self
            .segments
            .iter()
            .fold(0.0f32, |m, seg| m.max(seg.slope.abs()));
        let t = self
            .segments
            .iter()
            .fold(0.0f32, |m, seg| m.max(seg.intercept.abs()));
        (bp, s, t)
    }

    /// Returns a new table with every breakpoint and parameter transformed by
    /// `f` (used by the FP16 precision mode to round all stored constants).
    pub fn map_params<F: Fn(f32) -> f32>(&self, f: F) -> Result<Self, CoreError> {
        let breakpoints = self.breakpoints.iter().map(|&d| f(d)).collect();
        let segments = self
            .segments
            .iter()
            .map(|s| Segment::new(f(s.slope), f(s.intercept)))
            .collect();
        Self::new(breakpoints, segments)
    }

    /// Removes segments that can never be selected: zero-width intervals
    /// (coincident breakpoints, which trained networks occasionally
    /// produce). The returned table evaluates identically everywhere but
    /// may need fewer hardware entries.
    pub fn simplified(&self) -> Self {
        let mut breakpoints = Vec::with_capacity(self.breakpoints.len());
        let mut segments = Vec::with_capacity(self.segments.len());
        segments.push(self.segments[0]);
        for (i, &d) in self.breakpoints.iter().enumerate() {
            let dead = self.breakpoints.get(i + 1) == Some(&d);
            if !dead {
                breakpoints.push(d);
                segments.push(self.segments[i + 1]);
            }
        }
        Self::new(breakpoints, segments).expect("dropping unreachable segments preserves validity")
    }

    /// Whether the piecewise function is non-decreasing over `[lo, hi]` —
    /// a useful sanity property for tables approximating monotone targets
    /// (exp, sigmoid, the softmax path). Checks every segment's slope on
    /// its in-range portion and the jump at every in-range breakpoint.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi`.
    pub fn is_monotone_nondecreasing(&self, lo: f32, hi: f32) -> bool {
        assert!(lo <= hi, "is_monotone_nondecreasing requires lo <= hi");
        // Segment slopes on the covered range.
        for (i, seg) in self.segments.iter().enumerate() {
            let left = if i == 0 {
                f32::NEG_INFINITY
            } else {
                self.breakpoints[i - 1]
            };
            let right = self.breakpoints.get(i).copied().unwrap_or(f32::INFINITY);
            let covered = left.max(lo) < right.min(hi);
            if covered && seg.slope < 0.0 {
                return false;
            }
        }
        // Jumps at breakpoints: value from the left vs from the right.
        for (i, &d) in self.breakpoints.iter().enumerate() {
            if d <= lo || d >= hi {
                continue;
            }
            let before = self.segments[i].eval(d);
            let after = self.segments[i + 1].eval(d);
            if after < before - 1e-6 * (1.0 + before.abs()) {
                return false;
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn abs_lut() -> LookupTable {
        LookupTable::new(
            vec![0.0],
            vec![Segment::new(-1.0, 0.0), Segment::new(1.0, 0.0)],
        )
        .unwrap()
    }

    #[test]
    fn eval_selects_correct_segment() {
        let lut = abs_lut();
        assert_eq!(lut.eval(-2.0), 2.0);
        assert_eq!(lut.eval(2.0), 2.0);
        // Boundary point belongs to the right segment (Eq. 4: x ≥ d).
        assert_eq!(lut.segment_index(0.0), 1);
        assert_eq!(lut.eval(0.0), 0.0);
    }

    #[test]
    fn single_segment_table_is_a_line() {
        let lut = LookupTable::new(vec![], vec![Segment::new(2.0, 1.0)]).unwrap();
        assert_eq!(lut.entries(), 1);
        assert_eq!(lut.eval(3.0), 7.0);
        assert_eq!(lut.eval(-100.0), -199.0);
    }

    #[test]
    fn three_segments_interval_semantics() {
        // segment 0 for x < -1, segment 1 for -1 <= x < 1, segment 2 for x >= 1
        let lut = LookupTable::new(
            vec![-1.0, 1.0],
            vec![
                Segment::new(0.0, 10.0),
                Segment::new(0.0, 20.0),
                Segment::new(0.0, 30.0),
            ],
        )
        .unwrap();
        assert_eq!(lut.eval(-1.5), 10.0);
        assert_eq!(lut.eval(-1.0), 20.0);
        assert_eq!(lut.eval(0.0), 20.0);
        assert_eq!(lut.eval(1.0), 30.0);
        assert_eq!(lut.eval(5.0), 30.0);
    }

    #[test]
    fn duplicate_breakpoints_are_allowed() {
        let lut = LookupTable::new(
            vec![0.0, 0.0],
            vec![
                Segment::new(0.0, 1.0),
                Segment::new(0.0, 2.0),
                Segment::new(0.0, 3.0),
            ],
        )
        .unwrap();
        // x == 0 skips past both duplicates.
        assert_eq!(lut.eval(0.0), 3.0);
        assert_eq!(lut.eval(-0.1), 1.0);
    }

    #[test]
    fn constructor_rejects_bad_input() {
        assert_eq!(
            LookupTable::new(vec![], vec![]).unwrap_err(),
            CoreError::EmptyTable
        );
        assert!(matches!(
            LookupTable::new(vec![0.0], vec![Segment::default()]).unwrap_err(),
            CoreError::SegmentCountMismatch { .. }
        ));
        assert_eq!(
            LookupTable::new(
                vec![1.0, 0.0],
                vec![Segment::default(), Segment::default(), Segment::default()]
            )
            .unwrap_err(),
            CoreError::UnsortedBreakpoints
        );
        assert_eq!(
            LookupTable::new(vec![f32::NAN], vec![Segment::default(), Segment::default()])
                .unwrap_err(),
            CoreError::UnsortedBreakpoints
        );
        assert_eq!(
            LookupTable::new(
                vec![0.0],
                vec![Segment::new(f32::INFINITY, 0.0), Segment::default()]
            )
            .unwrap_err(),
            CoreError::NonFiniteParameter
        );
    }

    #[test]
    fn eval_slice_matches_eval() {
        let lut = abs_lut();
        let mut xs = vec![-2.0, -0.5, 0.0, 3.0];
        lut.eval_slice(&mut xs);
        assert_eq!(xs, vec![2.0, 0.5, 0.0, 3.0]);
    }

    #[test]
    fn param_abs_max_reports_extremes() {
        let lut = LookupTable::new(
            vec![-4.0, 2.0],
            vec![
                Segment::new(0.5, -7.0),
                Segment::new(-3.0, 1.0),
                Segment::new(1.0, 0.0),
            ],
        )
        .unwrap();
        assert_eq!(lut.param_abs_max(), (4.0, 3.0, 7.0));
    }

    #[test]
    fn map_params_applies_transform() {
        let lut = abs_lut();
        let doubled = lut.map_params(|v| v * 2.0).unwrap();
        assert_eq!(doubled.segments()[0].slope, -2.0);
        assert_eq!(doubled.eval(1.0), 2.0);
    }

    #[test]
    fn nan_input_propagates() {
        let lut = abs_lut();
        assert!(lut.eval(f32::NAN).is_nan());
    }

    #[test]
    fn simplified_drops_unreachable_segments() {
        let lut = LookupTable::new(
            vec![0.0, 0.0, 2.0],
            vec![
                Segment::new(0.0, 1.0),
                Segment::new(0.0, 99.0), // zero-width, never selected
                Segment::new(0.0, 2.0),
                Segment::new(0.0, 3.0),
            ],
        )
        .unwrap();
        let s = lut.simplified();
        assert_eq!(s.entries(), 3);
        for x in [-1.0f32, 0.0, 1.0, 2.0, 5.0] {
            assert_eq!(s.eval(x), lut.eval(x), "x={x}");
        }
    }

    #[test]
    fn simplified_is_identity_for_distinct_breakpoints() {
        let lut = LookupTable::new(
            vec![-1.0, 1.0],
            vec![
                Segment::new(1.0, 0.0),
                Segment::new(2.0, 1.0),
                Segment::new(0.5, 4.0),
            ],
        )
        .unwrap();
        assert_eq!(lut.simplified(), lut);
    }

    #[test]
    fn monotonicity_analysis() {
        // Increasing everywhere.
        let inc = LookupTable::new(
            vec![0.0],
            vec![Segment::new(1.0, 0.0), Segment::new(2.0, 0.0)],
        )
        .unwrap();
        assert!(inc.is_monotone_nondecreasing(-10.0, 10.0));
        // |x| decreases left of zero…
        let abs = abs_lut();
        assert!(!abs.is_monotone_nondecreasing(-10.0, 10.0));
        // …but is non-decreasing on the right half.
        assert!(abs.is_monotone_nondecreasing(0.0, 10.0));
        // A downward jump at a breakpoint breaks monotonicity even with
        // non-negative slopes.
        let jump = LookupTable::new(
            vec![1.0],
            vec![Segment::new(1.0, 0.0), Segment::new(1.0, -5.0)],
        )
        .unwrap();
        assert!(!jump.is_monotone_nondecreasing(0.0, 2.0));
    }
}
