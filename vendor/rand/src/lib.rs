//! Offline stand-in for the `rand` crate (0.8 API subset).
//!
//! This build environment has no access to crates.io, so the workspace
//! vendors the exact surface it uses: [`rngs::StdRng`],
//! [`SeedableRng::seed_from_u64`], [`Rng::gen`] and [`Rng::gen_range`].
//! The generator is xoshiro256++ seeded through SplitMix64 — deterministic
//! per seed, statistically solid for test/training workloads, and *not*
//! stream-compatible with the real `rand::rngs::StdRng` (seeded results
//! differ from a crates.io build, which only shifts which random model a
//! seed denotes).

/// Core random source: 64 uniformly random bits per call.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Seedable construction (API-compatible subset of `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be sampled uniformly from an `Rng` (the `Standard`
/// distribution of the real crate, collapsed into one trait).
pub trait Standard: Sized {
    /// Draws one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 24 high-quality mantissa bits → uniform in [0, 1).
        ((rng.next_u64() >> 40) as f32) * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        ((rng.next_u64() >> 11) as f64) * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() >> 63 == 1
    }
}

/// Ranges that `Rng::gen_range` accepts.
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

fn uniform_u64_below<R: RngCore + ?Sized>(rng: &mut R, bound: u64) -> u64 {
    debug_assert!(bound > 0);
    // Widening-multiply rejection (Lemire): unbiased and branch-light.
    loop {
        let x = rng.next_u64();
        let m = (x as u128) * (bound as u128);
        let lo = m as u64;
        if lo >= bound || lo >= (u64::MAX - bound + 1) % bound {
            return (m >> 64) as u64;
        }
    }
}

macro_rules! int_ranges {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u64;
                self.start + uniform_u64_below(rng, span) as $t
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo + uniform_u64_below(rng, span + 1) as $t
            }
        }
    )*};
}

int_ranges!(usize, u64, u32, u16, u8);

macro_rules! signed_ranges {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                // Wrapping difference reads the span as an unsigned width,
                // correct for any start < end including mixed signs.
                let span = self.end.wrapping_sub(self.start) as u64;
                self.start.wrapping_add(uniform_u64_below(rng, span) as $t)
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = hi.wrapping_sub(lo) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add(uniform_u64_below(rng, span + 1) as $t)
            }
        }
    )*};
}

signed_ranges!(isize, i64, i32, i16, i8);

impl SampleRange<f32> for std::ops::Range<f32> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "cannot sample empty range");
        let u = f32::sample(rng);
        let v = self.start + (self.end - self.start) * u;
        // Rounding can land exactly on the exclusive upper bound.
        if v >= self.end {
            self.start
        } else {
            v
        }
    }
}

impl SampleRange<f64> for std::ops::Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let u = f64::sample(rng);
        let v = self.start + (self.end - self.start) * u;
        if v >= self.end {
            self.start
        } else {
            v
        }
    }
}

impl SampleRange<f32> for std::ops::RangeInclusive<f32> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "cannot sample empty range");
        (lo + (hi - lo) * f32::sample(rng)).min(hi)
    }
}

impl SampleRange<f64> for std::ops::RangeInclusive<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "cannot sample empty range");
        (lo + (hi - lo) * f64::sample(rng)).min(hi)
    }
}

/// User-facing sampling methods (subset of `rand::Rng`).
pub trait Rng: RngCore {
    /// Draws a value of an inferable type (`Standard` distribution).
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Draws a value uniformly from `range`.
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample_single(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Named generators (subset of `rand::rngs`).
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256++.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, as the xoshiro authors recommend.
            let mut sm = seed;
            let mut next = || {
                sm = sm.wrapping_add(0x9e37_79b9_7f4a_7c15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
                z ^ (z >> 31)
            };
            Self {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn unit_floats_in_range() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut sum = 0.0f64;
        for _ in 0..10_000 {
            let x: f32 = rng.gen();
            assert!((0.0..1.0).contains(&x));
            sum += x as f64;
        }
        let mean = sum / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..1_000 {
            let v = rng.gen_range(3usize..10);
            assert!((3..10).contains(&v));
            let w = rng.gen_range(5usize..=5);
            assert_eq!(w, 5);
            let f = rng.gen_range(-2.0f32..2.0);
            assert!((-2.0..2.0).contains(&f));
        }
    }

    #[test]
    fn full_u16_inclusive_range_hits_extremes() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut lo_seen = false;
        let mut hi_half = false;
        for _ in 0..200_000 {
            let v = rng.gen_range(0u16..=u16::MAX);
            lo_seen |= v < 256;
            hi_half |= v > 65_000;
        }
        assert!(lo_seen && hi_half);
    }
}
