//! Request-lifecycle tracing and the flight recorder — the serving
//! stack's zero-dependency structured-observability layer.
//!
//! Two complementary views of the same system:
//!
//! * **Per-request** — every request owns a [`RequestTrace`]: a
//!   monotonic-clock journal of [`Stage`] events from admission to
//!   resolution, including every failover requeue and retry. The trace
//!   rides inside the request's `Ticket`, so a caller can ask *where did
//!   my request spend its time* ([`RequestTrace::breakdown`]) or *how far
//!   did it get before timing out* ([`RequestTrace::last_stage`]).
//! * **Fleet-wide** — one shared [`FlightRecorder`]: a bounded ring
//!   buffer of [`FlightEvent`]s recorded by the batcher, the async
//!   servers and the shard supervisor. On an incident (health
//!   transition, batch panic, stall-watchdog trip) the ring is frozen
//!   into an [`IncidentReport`] so the moments *leading up to* the
//!   failure survive after the ring has wrapped past them.
//!
//! # Passivity
//!
//! Tracing is strictly write-only from the serving path's perspective:
//! stage events and ring entries are appended, never read back into any
//! admission, batching, routing or retry decision. Batch composition
//! stays a pure function of arrival order, lengths and policy, and every
//! bit-identity suite passes unchanged with the recorder on
//! (`NNLUT_TRACE=1` in CI).
//!
//! # Cost model
//!
//! A stage event is one `Instant::now()` plus a short mutex-guarded
//! `Vec` push (capped — see [`RequestTrace::MAX_EVENTS`]). A flight
//! event is one clock read plus an O(1) ring write. Both structures
//! report their worst-case footprint via `approx_bytes`, which — like
//! `ServeMetrics::approx_bytes` — is a pure function of configuration,
//! not of traffic.

use std::fmt;
use std::sync::Mutex;
use std::time::{Duration, Instant};

use crate::server::RequestId;

/// Lifecycle stages a request moves through. A request records these in
/// order on the happy path; faults add [`Stage::Requeued`] /
/// [`Stage::Retried`] excursions, and every request terminates with
/// exactly one of [`Stage::Resolved`] or [`Stage::Failed`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Stage {
    /// Passed the admission door.
    Admitted,
    /// Parked in a length bucket awaiting batch assembly.
    Queued,
    /// Chosen into a concrete padded batch.
    Assembled,
    /// Batch handed to a replica's encode queue.
    Dispatched,
    /// Encode finished on the replica (success or panic — see the note).
    Encoded,
    /// Passed the ordered-completion gate.
    Reordered,
    /// Response delivered to the ticket.
    Resolved,
    /// Terminal failure delivered to the ticket.
    Failed,
    /// Pushed back to the front of the shard queue after a fault.
    Requeued,
    /// Re-routed to a replica after a requeue.
    Retried,
    /// One generated token emitted to a streaming ticket (recorded once
    /// per decode step, including the prefill's first token; long
    /// generations saturate the [`RequestTrace::MAX_EVENTS`] cap and
    /// further events are counted-by-omission).
    Decoded,
}

impl Stage {
    /// Every stage, in lifecycle order — the index order used by the
    /// per-stage sketches in `ServeMetrics`.
    pub const ALL: [Stage; 11] = [
        Stage::Admitted,
        Stage::Queued,
        Stage::Assembled,
        Stage::Dispatched,
        Stage::Encoded,
        Stage::Reordered,
        Stage::Resolved,
        Stage::Failed,
        Stage::Requeued,
        Stage::Retried,
        Stage::Decoded,
    ];

    /// Number of stages (the per-stage sketch array length).
    pub const COUNT: usize = Self::ALL.len();

    /// Stable lower-case name — the `stage` label in Prometheus
    /// exposition and the string shown in `WaitTimeout` errors.
    pub fn as_str(&self) -> &'static str {
        match self {
            Stage::Admitted => "admitted",
            Stage::Queued => "queued",
            Stage::Assembled => "assembled",
            Stage::Dispatched => "dispatched",
            Stage::Encoded => "encoded",
            Stage::Reordered => "reordered",
            Stage::Resolved => "resolved",
            Stage::Failed => "failed",
            Stage::Requeued => "requeued",
            Stage::Retried => "retried",
            Stage::Decoded => "decoded",
        }
    }

    /// Index into [`Stage::ALL`]-ordered arrays.
    pub fn index(&self) -> usize {
        *self as usize
    }
}

impl fmt::Display for Stage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// One recorded lifecycle event inside a [`RequestTrace`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEvent {
    /// Which stage was reached.
    pub stage: Stage,
    /// When, as an offset from the trace origin (admission time).
    pub at: Duration,
    /// The replica involved, when the stage is replica-specific.
    pub replica: Option<usize>,
    /// A static annotation — the fault cause on `Requeued`
    /// (`"panic"` / `"stall"` / `"bounce"`), the failure reason on
    /// `Failed` (`"deadline"` / `"retries-exhausted"` / …).
    pub note: Option<&'static str>,
}

/// The monotonic-clock journal one request carries through the stack.
///
/// Shared as an `Arc` between the ticket (reader) and the serving
/// internals (writers); the event list lives behind a mutex that is held
/// only for a push or a copy-out, never across any serving decision.
#[derive(Debug)]
pub struct RequestTrace {
    id: RequestId,
    origin: Instant,
    events: Mutex<Vec<TraceEvent>>,
}

impl RequestTrace {
    /// Hard cap on recorded events per request. Failover loops under a
    /// generous retry budget could otherwise grow a trace without bound;
    /// past the cap new events are counted-by-omission (dropped), which
    /// keeps the journal a fixed worst-case size. 64 covers a full
    /// lifecycle plus ~14 requeue/retry excursions.
    pub const MAX_EVENTS: usize = 64;

    /// A fresh trace whose origin (time zero) is now.
    pub fn new(id: RequestId) -> Self {
        Self {
            id,
            origin: Instant::now(),
            events: Mutex::new(Vec::with_capacity(8)),
        }
    }

    /// The traced request's id.
    pub fn id(&self) -> RequestId {
        self.id
    }

    /// Appends a stage event stamped against the trace origin. O(1)
    /// amortized; silently drops once [`Self::MAX_EVENTS`] is reached.
    pub fn record(&self, stage: Stage, replica: Option<usize>, note: Option<&'static str>) {
        let at = self.origin.elapsed();
        let mut events = self.events.lock().unwrap_or_else(|e| e.into_inner());
        if events.len() < Self::MAX_EVENTS {
            events.push(TraceEvent {
                stage,
                at,
                replica,
                note,
            });
        }
    }

    /// A copy of every recorded event, in record order (which is also
    /// time order — `at` is non-decreasing).
    pub fn events(&self) -> Vec<TraceEvent> {
        self.events
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .clone()
    }

    /// The most recently recorded stage, if any — what a timed-out
    /// caller sees in the `WaitTimeout` error.
    pub fn last_stage(&self) -> Option<Stage> {
        self.events
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .last()
            .map(|e| e.stage)
    }

    /// Folds the journal into a per-stage latency breakdown. The
    /// interval between consecutive events is attributed to the *later*
    /// event's stage ("time spent reaching that stage"), so the stage
    /// durations sum to [`TraceBreakdown::total`] exactly, by
    /// construction. The interval from origin to the first event belongs
    /// to that first event (normally `Admitted`, at ≈ 0).
    pub fn breakdown(&self) -> TraceBreakdown {
        let events = self.events.lock().unwrap_or_else(|e| e.into_inner());
        let mut stages = [Duration::ZERO; Stage::COUNT];
        let mut prev = Duration::ZERO;
        for ev in events.iter() {
            stages[ev.stage.index()] += ev.at.saturating_sub(prev);
            prev = ev.at;
        }
        TraceBreakdown {
            id: self.id,
            stages,
            total: prev,
            events: events.len(),
        }
    }
}

/// Per-stage latency attribution for one request (see
/// [`RequestTrace::breakdown`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceBreakdown {
    /// The traced request's id.
    pub id: RequestId,
    /// Time attributed to each stage, indexed like [`Stage::ALL`].
    pub stages: [Duration; Stage::COUNT],
    /// Origin-to-last-event span. Equals the sum of `stages` exactly.
    pub total: Duration,
    /// Number of journal events folded in.
    pub events: usize,
}

impl TraceBreakdown {
    /// Time attributed to one stage.
    pub fn stage(&self, stage: Stage) -> Duration {
        self.stages[stage.index()]
    }

    /// Total span from admission to the last recorded event.
    pub fn total(&self) -> Duration {
        self.total
    }
}

impl fmt::Display for TraceBreakdown {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "request {} ({:?} total):", self.id, self.total)?;
        for stage in Stage::ALL {
            let d = self.stage(stage);
            if !d.is_zero() {
                write!(f, " {}={:?}", stage, d)?;
            }
        }
        Ok(())
    }
}

/// Tracing configuration, resolved once at server construction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceConfig {
    /// Whether to run a flight recorder (per-request traces are always
    /// on — they are part of the ticket contract).
    pub recorder: bool,
    /// Ring capacity, in events, of the flight recorder.
    pub recorder_capacity: usize,
}

/// Default flight-recorder ring capacity (events).
pub const DEFAULT_RECORDER_CAPACITY: usize = 256;

impl TraceConfig {
    /// Reads `NNLUT_TRACE` from the environment: `1` or `true` enables
    /// the flight recorder at [`DEFAULT_RECORDER_CAPACITY`]; anything
    /// else (or unset) disables it.
    pub fn from_env() -> Self {
        let on = std::env::var("NNLUT_TRACE")
            .map(|v| v == "1" || v.eq_ignore_ascii_case("true"))
            .unwrap_or(false);
        if on {
            Self::enabled()
        } else {
            Self::disabled()
        }
    }

    /// Recorder on at the default capacity.
    pub fn enabled() -> Self {
        Self {
            recorder: true,
            recorder_capacity: DEFAULT_RECORDER_CAPACITY,
        }
    }

    /// Recorder off (per-request traces still run).
    pub fn disabled() -> Self {
        Self {
            recorder: false,
            recorder_capacity: DEFAULT_RECORDER_CAPACITY,
        }
    }
}

impl Default for TraceConfig {
    /// The environment-driven default (see [`TraceConfig::from_env`]).
    fn default() -> Self {
        Self::from_env()
    }
}

/// One fleet-wide journal entry in the [`FlightRecorder`] ring. Fully
/// fixed-size (`Copy`, static strings only) so the ring's memory is
/// exactly `capacity × size_of::<FlightEvent>()` forever.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FlightEvent {
    /// Monotone sequence number (total events ever recorded when this
    /// one was written; survives ring wrap, so gaps reveal overwrites).
    pub seq: u64,
    /// Offset from the recorder's construction instant.
    pub at: Duration,
    /// Static event kind, e.g. `"batch-panic"`, `"failover"`,
    /// `"quarantined"`.
    pub kind: &'static str,
    /// The replica involved, when replica-specific.
    pub replica: Option<usize>,
    /// The request involved, when request-specific.
    pub request: Option<RequestId>,
    /// Kind-specific magnitude (batch size, queue depth, attempt count —
    /// whatever the kind documents).
    pub value: u64,
}

/// A frozen copy of the recorder taken at an incident (see
/// [`FlightRecorder::snapshot_incident`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IncidentReport {
    /// What tripped the snapshot: a health transition
    /// (`"quarantined"`…), `"batch-panic"`, or `"stall"`.
    pub trigger: &'static str,
    /// The replica at fault, when known.
    pub replica: Option<usize>,
    /// When the snapshot was taken, as an offset from the recorder's
    /// construction instant.
    pub at: Duration,
    /// Which incident this is (1 = first since construction).
    pub incident_seq: u64,
    /// The ring contents at snapshot time, oldest first.
    pub events: Vec<FlightEvent>,
}

/// Interior state of the recorder ring.
#[derive(Debug)]
struct RecorderInner {
    /// The ring storage; grows to `capacity` once, then stays put.
    events: Vec<FlightEvent>,
    /// Next write position once the ring is full.
    head: usize,
    /// Total events ever recorded.
    seq: u64,
    /// Total incidents ever snapshotted.
    incident_seq: u64,
    /// The most recent incident snapshot, if any.
    last_incident: Option<IncidentReport>,
}

/// Bounded fleet-wide event journal: a fixed-capacity ring with O(1)
/// record, shared (via `Arc`) by the batcher, every async server and the
/// shard supervisor.
///
/// # Examples
///
/// ```
/// use nnlut_serve::trace::FlightRecorder;
///
/// let rec = FlightRecorder::new(4);
/// for i in 0..6 {
///     rec.record("routed", Some(0), Some(i), i);
/// }
/// let snap = rec.snapshot();
/// assert_eq!(snap.len(), 4); // ring holds the newest 4
/// assert_eq!(snap[0].seq, 2); // oldest surviving event
/// assert_eq!(snap[3].seq, 5);
/// ```
#[derive(Debug)]
pub struct FlightRecorder {
    inner: Mutex<RecorderInner>,
    capacity: usize,
    origin: Instant,
}

impl FlightRecorder {
    /// A recorder holding at most `capacity` events (min 1).
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        Self {
            inner: Mutex::new(RecorderInner {
                events: Vec::with_capacity(capacity),
                head: 0,
                seq: 0,
                incident_seq: 0,
                last_incident: None,
            }),
            capacity,
            origin: Instant::now(),
        }
    }

    /// Ring capacity in events.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Appends one event, overwriting the oldest once the ring is full.
    /// O(1): one clock read, one mutex-guarded slot write.
    pub fn record(
        &self,
        kind: &'static str,
        replica: Option<usize>,
        request: Option<RequestId>,
        value: u64,
    ) {
        let at = self.origin.elapsed();
        let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        let seq = inner.seq;
        inner.seq += 1;
        let event = FlightEvent {
            seq,
            at,
            kind,
            replica,
            request,
            value,
        };
        if inner.events.len() < self.capacity {
            inner.events.push(event);
        } else {
            let head = inner.head;
            inner.events[head] = event;
            inner.head = (head + 1) % self.capacity;
        }
    }

    /// Total events ever recorded (including ones the ring has dropped).
    pub fn recorded(&self) -> u64 {
        self.inner.lock().unwrap_or_else(|e| e.into_inner()).seq
    }

    /// The current ring contents, oldest first.
    pub fn snapshot(&self) -> Vec<FlightEvent> {
        let inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        self.ordered(&inner)
    }

    fn ordered(&self, inner: &RecorderInner) -> Vec<FlightEvent> {
        if inner.events.len() < self.capacity {
            inner.events.clone()
        } else {
            let mut out = Vec::with_capacity(inner.events.len());
            out.extend_from_slice(&inner.events[inner.head..]);
            out.extend_from_slice(&inner.events[..inner.head]);
            out
        }
    }

    /// Freezes the current ring into the `last_incident` slot and
    /// returns a copy. Called by the supervisor on health transitions
    /// and stall trips, and by encoders on batch panics.
    pub fn snapshot_incident(
        &self,
        trigger: &'static str,
        replica: Option<usize>,
    ) -> IncidentReport {
        let at = self.origin.elapsed();
        let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        inner.incident_seq += 1;
        let report = IncidentReport {
            trigger,
            replica,
            at,
            incident_seq: inner.incident_seq,
            events: self.ordered(&inner),
        };
        inner.last_incident = Some(report.clone());
        report
    }

    /// The most recent incident snapshot, if any.
    pub fn last_incident(&self) -> Option<IncidentReport> {
        self.inner
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .last_incident
            .clone()
    }

    /// Worst-case resident footprint: the full ring **plus** one full
    /// incident snapshot, counted whether or not either has filled yet —
    /// a pure function of `capacity`, so soak tests can assert it never
    /// moves under load.
    pub fn approx_bytes(&self) -> usize {
        std::mem::size_of::<Self>()
            + std::mem::size_of::<IncidentReport>()
            + 2 * self.capacity * std::mem::size_of::<FlightEvent>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::thread;

    #[test]
    fn trace_records_in_order_and_breaks_down_exactly() {
        let t = RequestTrace::new(7);
        t.record(Stage::Admitted, None, None);
        t.record(Stage::Queued, None, None);
        thread::sleep(Duration::from_millis(2));
        t.record(Stage::Dispatched, Some(1), None);
        t.record(Stage::Resolved, None, None);
        let events = t.events();
        assert_eq!(events.len(), 4);
        assert!(events.windows(2).all(|w| w[0].at <= w[1].at));
        assert_eq!(events[2].replica, Some(1));
        assert_eq!(t.last_stage(), Some(Stage::Resolved));

        let b = t.breakdown();
        assert_eq!(b.id, 7);
        assert_eq!(b.events, 4);
        // Attribution is exhaustive by construction: stage durations sum
        // to the total span exactly.
        let sum: Duration = Stage::ALL.iter().map(|s| b.stage(*s)).sum();
        assert_eq!(sum, b.total());
        assert!(b.total() >= Duration::from_millis(2));
        assert!(b.stage(Stage::Dispatched) >= Duration::from_millis(2));
    }

    #[test]
    fn trace_event_cap_holds() {
        let t = RequestTrace::new(1);
        for _ in 0..(RequestTrace::MAX_EVENTS + 10) {
            t.record(Stage::Requeued, Some(0), Some("panic"));
        }
        assert_eq!(t.events().len(), RequestTrace::MAX_EVENTS);
    }

    #[test]
    fn recorder_ring_wraps_and_keeps_newest() {
        let rec = FlightRecorder::new(3);
        for i in 0..7u64 {
            rec.record("routed", Some(0), Some(i), i);
        }
        assert_eq!(rec.recorded(), 7);
        let snap = rec.snapshot();
        assert_eq!(snap.len(), 3);
        assert_eq!(
            snap.iter().map(|e| e.seq).collect::<Vec<_>>(),
            vec![4, 5, 6]
        );
        assert!(snap.windows(2).all(|w| w[0].at <= w[1].at));
    }

    #[test]
    fn incident_snapshot_freezes_ring() {
        let rec = FlightRecorder::new(4);
        rec.record("routed", Some(0), Some(1), 5);
        rec.record("batch-panic", Some(0), None, 1);
        let report = rec.snapshot_incident("batch-panic", Some(0));
        assert_eq!(report.incident_seq, 1);
        assert_eq!(report.events.len(), 2);
        // Later traffic does not disturb the frozen snapshot.
        for i in 0..10 {
            rec.record("routed", Some(1), Some(i), 0);
        }
        let stored = rec.last_incident().expect("incident stored");
        assert_eq!(stored, report);
        // A second incident replaces it.
        let second = rec.snapshot_incident("stall", Some(1));
        assert_eq!(second.incident_seq, 2);
        assert_eq!(rec.last_incident().unwrap().trigger, "stall");
    }

    #[test]
    fn recorder_bytes_are_configuration_pure() {
        let rec = FlightRecorder::new(64);
        let empty = rec.approx_bytes();
        for i in 0..1000 {
            rec.record("routed", None, Some(i), i);
        }
        rec.snapshot_incident("stall", None);
        assert_eq!(rec.approx_bytes(), empty);
        // Capacity is the only input.
        assert!(FlightRecorder::new(128).approx_bytes() > empty);
    }

    #[test]
    fn recorder_is_shareable_across_threads() {
        let rec = Arc::new(FlightRecorder::new(32));
        let handles: Vec<_> = (0..4)
            .map(|t| {
                let rec = Arc::clone(&rec);
                thread::spawn(move || {
                    for i in 0..100 {
                        rec.record("routed", Some(t), Some(i), 0);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(rec.recorded(), 400);
        assert_eq!(rec.snapshot().len(), 32);
    }

    #[test]
    fn trace_config_modes() {
        assert!(TraceConfig::enabled().recorder);
        assert!(!TraceConfig::disabled().recorder);
        assert_eq!(
            TraceConfig::enabled().recorder_capacity,
            DEFAULT_RECORDER_CAPACITY
        );
    }

    #[test]
    fn stage_names_and_order_are_stable() {
        assert_eq!(Stage::COUNT, 11);
        for (i, s) in Stage::ALL.iter().enumerate() {
            assert_eq!(s.index(), i);
        }
        assert_eq!(Stage::Admitted.as_str(), "admitted");
        assert_eq!(Stage::Requeued.as_str(), "requeued");
        assert_eq!(format!("{}", Stage::Encoded), "encoded");
    }
}
