//! Reductions and statistics used by the evaluation harness.

/// Arithmetic mean (0.0 for an empty slice).
pub fn mean(xs: &[f32]) -> f32 {
    if xs.is_empty() {
        return 0.0;
    }
    xs.iter().sum::<f32>() / xs.len() as f32
}

/// Population variance (0.0 for an empty slice).
pub fn variance(xs: &[f32]) -> f32 {
    if xs.is_empty() {
        return 0.0;
    }
    let m = mean(xs);
    xs.iter().map(|x| (x - m) * (x - m)).sum::<f32>() / xs.len() as f32
}

/// Index of the maximum element.
///
/// Ties resolve to the first occurrence, matching classifier-head argmax
/// conventions.
///
/// # Panics
///
/// Panics if `xs` is empty.
pub fn argmax(xs: &[f32]) -> usize {
    assert!(!xs.is_empty(), "argmax of empty slice");
    let mut best = 0;
    for (i, &v) in xs.iter().enumerate() {
        if v > xs[best] {
            best = i;
        }
    }
    best
}

/// Pearson correlation coefficient between two equal-length slices.
///
/// Returns 0.0 when either side has zero variance (degenerate predictions),
/// mirroring common GLUE evaluation-script behaviour.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn pearson(xs: &[f32], ys: &[f32]) -> f32 {
    assert_eq!(xs.len(), ys.len(), "pearson length mismatch");
    if xs.is_empty() {
        return 0.0;
    }
    let mx = mean(xs);
    let my = mean(ys);
    let mut num = 0.0f64;
    let mut dx = 0.0f64;
    let mut dy = 0.0f64;
    for (&x, &y) in xs.iter().zip(ys) {
        let a = (x - mx) as f64;
        let b = (y - my) as f64;
        num += a * b;
        dx += a * a;
        dy += b * b;
    }
    if dx == 0.0 || dy == 0.0 {
        return 0.0;
    }
    (num / (dx.sqrt() * dy.sqrt())) as f32
}

/// Spearman rank correlation: Pearson on fractional ranks.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn spearman(xs: &[f32], ys: &[f32]) -> f32 {
    assert_eq!(xs.len(), ys.len(), "spearman length mismatch");
    pearson(&ranks(xs), &ranks(ys))
}

/// Fractional ranks (average rank for ties), 1-based.
fn ranks(xs: &[f32]) -> Vec<f32> {
    let mut idx: Vec<usize> = (0..xs.len()).collect();
    idx.sort_by(|&a, &b| {
        xs[a]
            .partial_cmp(&xs[b])
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    let mut out = vec![0.0f32; xs.len()];
    let mut i = 0;
    while i < idx.len() {
        let mut j = i;
        while j + 1 < idx.len() && xs[idx[j + 1]] == xs[idx[i]] {
            j += 1;
        }
        // ranks i+1 ..= j+1 tie; assign their average.
        let avg = (i + 1 + j + 1) as f32 / 2.0;
        for &k in &idx[i..=j] {
            out[k] = avg;
        }
        i = j + 1;
    }
    out
}

/// Matthews correlation coefficient for binary labels (the CoLA metric).
///
/// Inputs are 0/1 class ids. Returns 0.0 for degenerate confusion matrices.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn matthews_corr(pred: &[usize], truth: &[usize]) -> f32 {
    assert_eq!(pred.len(), truth.len(), "matthews length mismatch");
    let (mut tp, mut tn, mut fp, mut fne) = (0f64, 0f64, 0f64, 0f64);
    for (&p, &t) in pred.iter().zip(truth) {
        match (p, t) {
            (1, 1) => tp += 1.0,
            (0, 0) => tn += 1.0,
            (1, 0) => fp += 1.0,
            (0, 1) => fne += 1.0,
            _ => panic!("matthews_corr expects binary labels, got ({p},{t})"),
        }
    }
    let denom = ((tp + fp) * (tp + fne) * (tn + fp) * (tn + fne)).sqrt();
    if denom == 0.0 {
        return 0.0;
    }
    ((tp * tn - fp * fne) / denom) as f32
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_and_variance_known() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(mean(&xs), 2.5);
        assert_eq!(variance(&xs), 1.25);
    }

    #[test]
    fn empty_slices_are_zero() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(variance(&[]), 0.0);
        assert_eq!(pearson(&[], &[]), 0.0);
    }

    #[test]
    fn argmax_first_tie_wins() {
        assert_eq!(argmax(&[1.0, 3.0, 3.0, 2.0]), 1);
    }

    #[test]
    fn pearson_perfect_correlation() {
        let xs = [1.0, 2.0, 3.0];
        let ys = [2.0, 4.0, 6.0];
        assert!((pearson(&xs, &ys) - 1.0).abs() < 1e-6);
        let neg = [3.0, 2.0, 1.0];
        assert!((pearson(&xs, &neg) + 1.0).abs() < 1e-6);
    }

    #[test]
    fn pearson_zero_variance_is_zero() {
        assert_eq!(pearson(&[1.0, 1.0], &[2.0, 3.0]), 0.0);
    }

    #[test]
    fn spearman_monotone_nonlinear_is_one() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        let ys = [1.0, 8.0, 27.0, 64.0];
        assert!((spearman(&xs, &ys) - 1.0).abs() < 1e-6);
    }

    #[test]
    fn spearman_handles_ties() {
        let xs = [1.0, 1.0, 2.0];
        let ys = [5.0, 5.0, 9.0];
        let s = spearman(&xs, &ys);
        assert!(s > 0.99, "tied spearman {s}");
    }

    #[test]
    fn matthews_perfect_and_inverted() {
        let t = [0, 1, 0, 1];
        assert!((matthews_corr(&t, &t) - 1.0).abs() < 1e-6);
        let inv = [1, 0, 1, 0];
        assert!((matthews_corr(&inv, &t) + 1.0).abs() < 1e-6);
    }

    #[test]
    fn matthews_degenerate_is_zero() {
        assert_eq!(matthews_corr(&[1, 1], &[1, 0]), 0.0);
    }
}
