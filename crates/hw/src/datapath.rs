//! Pipeline composition: stages of components → unit totals.

use crate::component::{Component, Cost};

/// One pipeline stage: the listed components form the stage's critical
/// path in series (parallel structures are modelled as single aggregate
/// components, e.g. [`Component::ComparatorTree`]).
#[derive(Debug, Clone, PartialEq)]
pub struct PipelineStage {
    /// Human-readable stage name (matches Fig. 3 labels).
    pub name: &'static str,
    /// Components in series along the stage path.
    pub components: Vec<Component>,
}

impl PipelineStage {
    /// Creates a named stage.
    pub fn new(name: &'static str, components: Vec<Component>) -> Self {
        Self { name, components }
    }

    /// Total cost of the stage: area/power summed, delay in series.
    pub fn cost(&self) -> Cost {
        self.components
            .iter()
            .fold(Cost::default(), |acc, c| acc.in_series(c.cost()))
    }
}

/// A complete arithmetic unit: pipeline stages plus shared (non-staged)
/// resources such as parameter tables.
#[derive(Debug, Clone, PartialEq)]
pub struct Datapath {
    /// Unit name (Table 4 column).
    pub name: &'static str,
    /// Pipeline stages.
    pub stages: Vec<PipelineStage>,
    /// Shared resources outside the per-stage critical paths (storage,
    /// control): contribute area/power but not stage delay.
    pub shared: Vec<Component>,
}

impl Datapath {
    /// Total silicon area (µm²).
    pub fn area_um2(&self) -> f64 {
        self.total().area_um2
    }

    /// Total dynamic power (mW) with the unit clocked at its own maximum
    /// frequency (`1/critical_path`), which is how the paper reports
    /// per-unit power.
    pub fn power_mw(&self) -> f64 {
        self.total().power_mw_at(self.critical_path_ns())
    }

    /// Critical-path delay (ns): the slowest pipeline stage.
    pub fn critical_path_ns(&self) -> f64 {
        self.stages
            .iter()
            .map(|s| s.cost().delay_ns)
            .fold(0.0, f64::max)
    }

    /// Number of pipeline stages.
    pub fn pipeline_depth(&self) -> usize {
        self.stages.len()
    }

    fn total(&self) -> Cost {
        let mut acc = Cost::default();
        for s in &self.stages {
            acc = acc.in_parallel(s.cost());
        }
        for c in &self.shared {
            acc = acc.in_parallel(c.cost());
        }
        acc
    }

    /// A per-stage cost breakdown (for reports and debugging).
    pub fn stage_breakdown(&self) -> Vec<(&'static str, Cost)> {
        self.stages.iter().map(|s| (s.name, s.cost())).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_stage_unit() -> Datapath {
        Datapath {
            name: "test",
            stages: vec![
                PipelineStage::new(
                    "select",
                    vec![Component::ComparatorTree {
                        bits: 16,
                        entries: 16,
                    }],
                ),
                PipelineStage::new(
                    "mac",
                    vec![
                        Component::IntMultiplier { bits: 32 },
                        Component::IntAdder { bits: 32 },
                    ],
                ),
            ],
            shared: vec![Component::TableMemory { bits_total: 1024 }],
        }
    }

    #[test]
    fn area_includes_all_parts() {
        let u = two_stage_unit();
        let sum: f64 = u
            .stages
            .iter()
            .map(|s| s.cost().area_um2)
            .chain(u.shared.iter().map(|c| c.cost().area_um2))
            .sum();
        assert!((u.area_um2() - sum).abs() < 1e-9);
    }

    #[test]
    fn critical_path_is_slowest_stage() {
        let u = two_stage_unit();
        let mac = u.stages[1].cost().delay_ns;
        let sel = u.stages[0].cost().delay_ns;
        assert!(mac > sel, "MAC should dominate: {mac} vs {sel}");
        assert_eq!(u.critical_path_ns(), mac);
    }

    #[test]
    fn shared_resources_do_not_affect_delay() {
        let mut u = two_stage_unit();
        let before = u.critical_path_ns();
        u.shared.push(Component::TableMemory {
            bits_total: 100_000,
        });
        assert_eq!(u.critical_path_ns(), before);
        assert!(u.area_um2() > 50_000.0 * 0.4);
    }

    #[test]
    fn pipeline_depth_counts_stages() {
        assert_eq!(two_stage_unit().pipeline_depth(), 2);
    }
}
