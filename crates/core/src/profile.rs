//! Op-level profiling seam for the baked deployment engines.
//!
//! The serving layer wants to answer "where did this batch's encode time
//! go — softmax, GELU or LayerNorm?" without perturbing a single output
//! bit. This module is that seam: an [`OpCounters`] sink of **relaxed
//! atomic** per-op counters (call count, rows processed, nanoseconds)
//! that the transformer backends bump at *chunk* granularity when a sink
//! is attached, and that costs nothing when none is (the default — every
//! construction path starts with no sink).
//!
//! Design constraints, in order:
//!
//! 1. **Passive.** Counters never feed back into the math, chunk
//!    boundaries or scheduling — the determinism contract
//!    (`tests/serve_determinism.rs`) holds with or without a sink.
//! 2. **Cheap.** Three relaxed `fetch_add`s per *chunk* (not per element
//!    or per row); the clock is read only when a sink is present.
//! 3. **Shareable.** One `Arc<OpCounters>` can sit behind every replica
//!    of a sharded fleet — relaxed ordering is enough because the
//!    counters are monotone totals, never synchronization.
//!
//! Totals are cumulative per sink. A fleet sharing one sink reads
//! fleet-wide attribution; per-batch deltas are deliberately not offered
//! (concurrent encoders would race the delta), only averages derived
//! from the totals.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// The three non-linear operation sites the engines attribute time to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OpKind {
    /// Attention softmax (masked row kernel).
    Softmax,
    /// Feed-forward GELU (element kernel).
    Gelu,
    /// Block LayerNorm (row kernel + affine).
    LayerNorm,
}

impl OpKind {
    /// Every op site, in [`OpProfile`] index order.
    pub const ALL: [OpKind; 3] = [OpKind::Softmax, OpKind::Gelu, OpKind::LayerNorm];

    /// Lower-case name (`"softmax"` / `"gelu"` / `"layernorm"`) — the
    /// label metrics exposition uses.
    pub fn as_str(&self) -> &'static str {
        match self {
            OpKind::Softmax => "softmax",
            OpKind::Gelu => "gelu",
            OpKind::LayerNorm => "layernorm",
        }
    }

    fn index(&self) -> usize {
        *self as usize
    }
}

/// One op site's monotone counters.
#[derive(Debug, Default)]
struct OpCell {
    calls: AtomicU64,
    rows: AtomicU64,
    nanos: AtomicU64,
}

/// Cumulative per-op profiling totals — the no-op-by-default sink the
/// transformer backends record into when one is attached
/// (`Nonlinearity::with_profile` in `nnlut-transformer`).
///
/// # Examples
///
/// ```
/// use nnlut_core::profile::{OpCounters, OpKind};
/// use std::time::Duration;
///
/// let counters = OpCounters::new();
/// counters.record(OpKind::Softmax, 8, Duration::from_micros(3));
/// let snap = counters.snapshot();
/// assert_eq!(snap.get(OpKind::Softmax).calls, 1);
/// assert_eq!(snap.get(OpKind::Softmax).rows, 8);
/// assert_eq!(snap.get(OpKind::Gelu).calls, 0);
/// ```
#[derive(Debug, Default)]
pub struct OpCounters {
    cells: [OpCell; 3],
}

impl OpCounters {
    /// A zeroed sink.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one kernel invocation over `rows` work items taking
    /// `elapsed`. Relaxed atomics: totals are monotone bookkeeping, never
    /// synchronization, so concurrent encoder threads may interleave
    /// freely.
    pub fn record(&self, op: OpKind, rows: u64, elapsed: Duration) {
        let cell = &self.cells[op.index()];
        cell.calls.fetch_add(1, Ordering::Relaxed);
        cell.rows.fetch_add(rows, Ordering::Relaxed);
        cell.nanos
            .fetch_add(elapsed.as_nanos() as u64, Ordering::Relaxed);
    }

    /// A point-in-time copy of every op's totals. Each counter is read
    /// independently (relaxed), so under concurrent recording the three
    /// fields of one op may be from slightly different instants — fine
    /// for monotone dashboards, not a transactional snapshot.
    pub fn snapshot(&self) -> OpProfile {
        OpProfile {
            ops: OpKind::ALL.map(|op| {
                let cell = &self.cells[op.index()];
                OpStats {
                    op,
                    calls: cell.calls.load(Ordering::Relaxed),
                    rows: cell.rows.load(Ordering::Relaxed),
                    nanos: cell.nanos.load(Ordering::Relaxed),
                }
            }),
        }
    }
}

/// One op site's totals inside an [`OpProfile`] snapshot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OpStats {
    /// Which op site.
    pub op: OpKind,
    /// Kernel invocations (chunk granularity).
    pub calls: u64,
    /// Work items processed: rows for softmax/layernorm, elements for
    /// the GELU element kernel.
    pub rows: u64,
    /// Total nanoseconds spent inside the kernel.
    pub nanos: u64,
}

impl OpStats {
    /// Total kernel time as a [`Duration`].
    pub fn elapsed(&self) -> Duration {
        Duration::from_nanos(self.nanos)
    }
}

/// A snapshot of every op site's totals (see [`OpCounters::snapshot`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OpProfile {
    /// Per-op totals, indexed like [`OpKind::ALL`].
    pub ops: [OpStats; 3],
}

impl OpProfile {
    /// The totals for one op site.
    pub fn get(&self, op: OpKind) -> OpStats {
        self.ops[op.index()]
    }

    /// Summed kernel time across every op site.
    pub fn total_elapsed(&self) -> Duration {
        Duration::from_nanos(self.ops.iter().map(|s| s.nanos).sum())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_accumulate_per_op() {
        let c = OpCounters::new();
        c.record(OpKind::Gelu, 100, Duration::from_nanos(500));
        c.record(OpKind::Gelu, 50, Duration::from_nanos(250));
        c.record(OpKind::LayerNorm, 4, Duration::from_nanos(10));
        let snap = c.snapshot();
        assert_eq!(snap.get(OpKind::Gelu).calls, 2);
        assert_eq!(snap.get(OpKind::Gelu).rows, 150);
        assert_eq!(snap.get(OpKind::Gelu).nanos, 750);
        assert_eq!(snap.get(OpKind::LayerNorm).calls, 1);
        assert_eq!(snap.get(OpKind::Softmax).calls, 0);
        assert_eq!(snap.total_elapsed(), Duration::from_nanos(760));
    }

    #[test]
    fn concurrent_recording_loses_nothing() {
        let c = std::sync::Arc::new(OpCounters::new());
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let c = std::sync::Arc::clone(&c);
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        c.record(OpKind::Softmax, 2, Duration::from_nanos(3));
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let s = c.snapshot().get(OpKind::Softmax);
        assert_eq!(s.calls, 4000);
        assert_eq!(s.rows, 8000);
        assert_eq!(s.nanos, 12_000);
    }

    #[test]
    fn op_names_are_stable() {
        assert_eq!(OpKind::Softmax.as_str(), "softmax");
        assert_eq!(OpKind::Gelu.as_str(), "gelu");
        assert_eq!(OpKind::LayerNorm.as_str(), "layernorm");
    }
}
