//! Integer-only Softmax (I-BERT §3.2).
//!
//! Max-subtract in integers, [`crate::i_exp`] per element (all outputs share
//! one scale), integer sum, then a single integer division realized as a
//! `⌊2^62/sum⌋` reciprocal multiply — the divider block of the I-BERT
//! datapath (paper Fig. 3b).

use crate::exp::i_exp;
use crate::fixed::{scale_16bit, Quantized};

/// Fixed-point fraction bits of the softmax output (`S_out = 2^−30`).
pub const SOFTMAX_OUT_BITS: u32 = 30;

/// Integer-only softmax over one row of quantized logits (shared scale).
///
/// Returns the probabilities as quantized values with scale `2^−30`.
///
/// # Panics
///
/// Panics if `scale` is not finite and positive.
pub fn i_softmax(qs: &[i64], scale: f32) -> Vec<Quantized> {
    assert!(
        scale.is_finite() && scale > 0.0,
        "softmax scale must be finite and positive"
    );
    let out_scale = 2.0f32.powi(-(SOFTMAX_OUT_BITS as i32));
    if qs.is_empty() {
        return Vec::new();
    }
    let max = qs.iter().copied().max().expect("non-empty");
    let exps: Vec<Quantized> = qs
        .iter()
        .map(|&q| i_exp(Quantized { q: q - max, scale }))
        .collect();
    let sum: i64 = exps.iter().map(|e| e.q).sum();
    if sum <= 0 {
        // All-underflow row: return a uniform distribution, as I-BERT's
        // implementation effectively does for degenerate rows.
        let uniform = (1i64 << SOFTMAX_OUT_BITS) / qs.len() as i64;
        return qs
            .iter()
            .map(|_| Quantized {
                q: uniform,
                scale: out_scale,
            })
            .collect();
    }
    // factor = ⌊2^62 / sum⌋; q_out = (q_exp · factor) >> 32 → q_exp/sum · 2^30.
    let factor = (1i64 << 62) / sum;
    exps.into_iter()
        .map(|e| Quantized {
            q: (e.q.saturating_mul(factor)) >> 32,
            scale: out_scale,
        })
        .collect()
}

/// Convenience wrapper: quantizes an `f32` logit row on a 16-bit grid,
/// runs [`i_softmax`], and de-quantizes.
pub fn i_softmax_f32(xs: &mut [f32]) {
    if xs.is_empty() {
        return;
    }
    let max_abs = xs.iter().fold(0.0f32, |m, v| m.max(v.abs())).max(1.0);
    let scale = scale_16bit(max_abs);
    let qs: Vec<i64> = xs
        .iter()
        .map(|&x| (x as f64 / scale as f64).round() as i64)
        .collect();
    for (x, p) in xs.iter_mut().zip(i_softmax(&qs, scale)) {
        *x = p.real();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn exact_softmax(xs: &[f32]) -> Vec<f32> {
        let max = xs.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
        let e: Vec<f64> = xs.iter().map(|&x| ((x - max) as f64).exp()).collect();
        let s: f64 = e.iter().sum();
        e.iter().map(|&v| (v / s) as f32).collect()
    }

    #[test]
    fn matches_exact_softmax() {
        let logits = [0.5f32, -2.0, 1.5, 0.0, -0.7, 2.2];
        let mut approx = logits;
        i_softmax_f32(&mut approx);
        for (a, e) in approx.iter().zip(exact_softmax(&logits)) {
            assert!((a - e).abs() < 0.01, "{a} vs {e}");
        }
    }

    #[test]
    fn output_sums_to_one() {
        let mut row = [3.0f32, 1.0, 0.2, -1.0, 5.5, 2.2, 0.0, -3.3];
        i_softmax_f32(&mut row);
        let sum: f32 = row.iter().sum();
        assert!((sum - 1.0).abs() < 0.01, "sum {sum}");
    }

    #[test]
    fn handles_wide_dynamic_range() {
        let mut row = [0.0f32, -50.0, -100.0, -200.0];
        i_softmax_f32(&mut row);
        assert!((row[0] - 1.0).abs() < 0.01);
        assert!(row[1].abs() < 0.01);
    }

    #[test]
    fn long_rows_stay_normalized() {
        let mut row: Vec<f32> = (0..1024).map(|i| (i % 17) as f32 * 0.3 - 2.0).collect();
        i_softmax_f32(&mut row);
        let sum: f32 = row.iter().sum();
        assert!((sum - 1.0).abs() < 0.02, "sum {sum}");
        assert!(row.iter().all(|&p| p >= 0.0));
    }

    #[test]
    fn empty_row_is_noop() {
        let mut row: Vec<f32> = vec![];
        i_softmax_f32(&mut row);
        assert!(row.is_empty());
    }

    #[test]
    fn order_preserved() {
        let mut row = [-1.0f32, 0.3, 2.0, 0.29];
        i_softmax_f32(&mut row);
        assert!(row[2] > row[1] && row[1] >= row[3] && row[3] > row[0]);
    }
}
