//! **T3** — Table 3 reproduction: direct approximation of Softmax in the
//! MobileBERT-like span model on the SQuAD-like task.
//!
//! MobileBERT uses NoNorm + ReLU, so Softmax is the only non-linear
//! operation in the transformer layer; MatMul runs in FP16. Rows compare
//! Baseline vs Linear-LUT vs NN-LUT with the softmax tables deployed in
//! FP32 and FP16.
//!
//! Run: `cargo run --release -p nnlut-bench --bin table3_mobilebert`

use nnlut_bench::{linear_kit, paper_kit};
use nnlut_core::precision::Precision;
use nnlut_transformer::eval::{BenchConfig, SquadBench};
use nnlut_transformer::{MatmulMode, Nonlinearity, TransformerConfig};

fn main() {
    println!("== Table 3: MobileBERT-like SQuAD-like span task, Softmax approximation ==");
    println!("   (MatMul computed in FP16 in all cases)\n");

    let cfg = BenchConfig {
        config: TransformerConfig::mobilebert_tiny(),
        seq_len: 32,
        n_train: 256,
        n_eval: 128,
        body_mode: MatmulMode::F16,
        ..BenchConfig::default()
    };
    eprintln!("building frozen MobileBERT-like span model …");
    let bench = SquadBench::new(&cfg);

    let nn = paper_kit();
    let nn16 = nn.with_precision(Precision::F16).expect("fp16 kit");
    let lin = linear_kit();
    let lin16 = lin.with_precision(Precision::F16).expect("fp16 kit");

    let baseline = bench.f1(&Nonlinearity::exact());
    let rows = [
        ("Baseline (FP32 softmax)", baseline),
        (
            "Linear-LUT FP32",
            bench.f1(&Nonlinearity::softmax_only(&lin)),
        ),
        (
            "Linear-LUT FP16",
            bench.f1(&Nonlinearity::softmax_only(&lin16)),
        ),
        ("NN-LUT FP32", bench.f1(&Nonlinearity::softmax_only(&nn))),
        ("NN-LUT FP16", bench.f1(&Nonlinearity::softmax_only(&nn16))),
    ];

    println!("{:<26}{:>10}{:>10}", "Approx. type", "F1", "(loss)");
    for (label, f1) in rows {
        println!("{label:<26}{f1:>10.1}{:>10.1}", f1 - baseline);
    }

    println!("\nPaper shape to check: NN-LUT matches the baseline in both");
    println!("precisions; Linear-LUT loses F1 in both.");
}
