//! Dataset-free calibration of NN-LUT parameters (paper §3.3.3).
//!
//! After a Transformer's non-linear ops are replaced by offline-trained
//! NN-LUTs ("direct approximation"), residual accuracy loss can be recovered
//! by *calibration*: run a small amount of unlabeled data through the model,
//! capture the actual inputs each non-linear op sees, and re-regress each
//! approximator against its full-precision reference **on that empirical
//! input distribution**. All Transformer parameters stay frozen, so this is
//! cheap (the paper reports < 5 % of fine-tuning time, five epochs).
//!
//! The mechanism here: [`ActivationCapture`] reservoir-samples op inputs
//! during inference; [`calibrate`] fine-tunes the approximator on those
//! samples (optionally mixed with synthetic uniform samples so coverage of
//! the full domain is not lost) and returns the updated network, which is
//! then re-converted to LUT form via [`crate::nn_to_lut`].

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::error::CoreError;
use crate::funcs::validate_domain;
use crate::nn::ApproxNet;
use crate::train::{train, Dataset, Loss, TrainConfig};

/// Reservoir sampler for op-input activations.
///
/// Keeps a uniform random subset of everything recorded, in O(cap) memory,
/// so a whole evaluation pass can be captured without blowing up.
///
/// # Examples
///
/// ```
/// use nnlut_core::calibrate::ActivationCapture;
///
/// let mut cap = ActivationCapture::new(128, 7);
/// for i in 0..10_000 {
///     cap.record(i as f32);
/// }
/// assert_eq!(cap.len(), 128);
/// assert_eq!(cap.seen(), 10_000);
/// ```
#[derive(Debug, Clone)]
pub struct ActivationCapture {
    samples: Vec<f32>,
    cap: usize,
    seen: u64,
    rng: StdRng,
}

impl ActivationCapture {
    /// Creates a capture buffer holding at most `cap` samples.
    ///
    /// # Panics
    ///
    /// Panics if `cap == 0`.
    pub fn new(cap: usize, seed: u64) -> Self {
        assert!(cap > 0, "capture capacity must be positive");
        Self {
            samples: Vec::with_capacity(cap),
            cap,
            seen: 0,
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// Records one activation value (reservoir sampling).
    pub fn record(&mut self, x: f32) {
        if !x.is_finite() {
            return;
        }
        self.seen += 1;
        if self.samples.len() < self.cap {
            self.samples.push(x);
        } else {
            let j = self.rng.gen_range(0..self.seen);
            if (j as usize) < self.cap {
                self.samples[j as usize] = x;
            }
        }
    }

    /// Records a batch of activations.
    pub fn record_slice(&mut self, xs: &[f32]) {
        for &x in xs {
            self.record(x);
        }
    }

    /// The retained samples.
    pub fn samples(&self) -> &[f32] {
        &self.samples
    }

    /// Number of retained samples (≤ capacity).
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Total number of values offered to the reservoir.
    pub fn seen(&self) -> u64 {
        self.seen
    }
}

/// Reservoir sampler for whole activation *rows* (fixed-width vectors).
///
/// The codebook calibration pass ([`crate::codebook`]) needs the joint
/// distribution of the vectors entering each linear layer, not the
/// marginal of individual scalars — sub-vector k-means is only meaningful
/// on intact rows. This is the row-shaped sibling of
/// [`ActivationCapture`]: same O(cap) reservoir scheme, same seeded
/// vendored [`StdRng`], one slot per row.
///
/// Rows containing a non-finite value are skipped entirely (k-means over
/// NaN is undefined), mirroring [`ActivationCapture::record`].
///
/// # Examples
///
/// ```
/// use nnlut_core::calibrate::RowCapture;
///
/// let mut cap = RowCapture::new(4, 16, 7);
/// for i in 0..1_000 {
///     let row: Vec<f32> = (0..4).map(|j| (i * 4 + j) as f32).collect();
///     cap.record_row(&row);
/// }
/// assert_eq!(cap.n_rows(), 16);
/// assert_eq!(cap.rows().len(), 16 * 4);
/// ```
#[derive(Debug, Clone)]
pub struct RowCapture {
    rows: Vec<f32>,
    width: usize,
    cap: usize,
    seen: u64,
    rng: StdRng,
}

impl RowCapture {
    /// Creates a capture buffer for `width`-component rows holding at most
    /// `cap` of them.
    ///
    /// # Panics
    ///
    /// Panics if `width == 0` or `cap == 0`.
    pub fn new(width: usize, cap: usize, seed: u64) -> Self {
        assert!(width > 0, "row capture width must be positive");
        assert!(cap > 0, "capture capacity must be positive");
        Self {
            rows: Vec::with_capacity(cap * width),
            width,
            cap,
            seen: 0,
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// Records one activation row (reservoir sampling; non-finite rows are
    /// skipped).
    ///
    /// # Panics
    ///
    /// Panics if `row.len() != width`.
    pub fn record_row(&mut self, row: &[f32]) {
        assert_eq!(row.len(), self.width, "row width mismatch");
        if row.iter().any(|v| !v.is_finite()) {
            return;
        }
        self.seen += 1;
        if self.rows.len() < self.cap * self.width {
            self.rows.extend_from_slice(row);
        } else {
            let j = self.rng.gen_range(0..self.seen);
            if (j as usize) < self.cap {
                let at = j as usize * self.width;
                self.rows[at..at + self.width].copy_from_slice(row);
            }
        }
    }

    /// Records every `width`-sized row of a packed row-major buffer.
    ///
    /// # Panics
    ///
    /// Panics if `data.len()` is not a multiple of the row width.
    pub fn record_rows(&mut self, data: &[f32]) {
        assert!(
            data.len().is_multiple_of(self.width),
            "packed buffer is not a whole number of rows"
        );
        for row in data.chunks_exact(self.width) {
            self.record_row(row);
        }
    }

    /// The retained rows, packed row-major (`n_rows × width`).
    pub fn rows(&self) -> &[f32] {
        &self.rows
    }

    /// Row width.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Number of retained rows (≤ capacity).
    pub fn n_rows(&self) -> usize {
        self.rows.len() / self.width
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Total number of (finite) rows offered to the reservoir.
    pub fn seen(&self) -> u64 {
        self.seen
    }
}

/// Calibration hyper-parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct CalibrationConfig {
    /// Fine-tuning epochs over the captured samples (paper: five).
    pub epochs: usize,
    /// Adam learning rate (smaller than training: the net is already good).
    pub learning_rate: f32,
    /// Fraction of additional synthetic uniform-domain samples mixed in so
    /// the LUT does not forget the rest of its range (0.0 disables).
    pub uniform_mix: f32,
    /// Minibatch size.
    pub batch_size: usize,
}

impl Default for CalibrationConfig {
    fn default() -> Self {
        Self {
            epochs: 5,
            learning_rate: 2e-4,
            uniform_mix: 0.25,
            batch_size: 128,
        }
    }
}

/// Re-regresses a trained approximator against its full-precision reference
/// on captured activation inputs (paper §3.3.3).
///
/// `net` must be in raw input coordinates over `domain` (the output of
/// [`crate::recipe::train_recipe`]); the returned network is too.
///
/// # Errors
///
/// * [`CoreError::NoCalibrationSamples`] if `captured` is empty.
/// * [`CoreError::InvalidDomain`] for a malformed domain.
pub fn calibrate<F: Fn(f32) -> f32>(
    net: &ApproxNet,
    reference: F,
    domain: (f32, f32),
    captured: &[f32],
    cfg: &CalibrationConfig,
    seed: u64,
) -> Result<ApproxNet, CoreError> {
    validate_domain(domain)?;
    if captured.is_empty() {
        return Err(CoreError::NoCalibrationSamples);
    }
    let (lo, hi) = domain;

    // Build the calibration input set: captured activations plus an optional
    // uniform tail for domain coverage.
    let mut raw: Vec<f32> = captured.to_vec();
    let extra = (captured.len() as f32 * cfg.uniform_mix) as usize;
    let mut rng = StdRng::seed_from_u64(seed ^ 0xc0de);
    for _ in 0..extra {
        raw.push(lo + (hi - lo) * rng.gen::<f32>());
    }
    let data = Dataset::from_raw_samples(&reference, domain, &raw)?;

    // Move the net into normalized coordinates, fine-tune, move back.
    let mut net_z = normalized(net, lo, hi);
    let train_cfg = TrainConfig {
        epochs: cfg.epochs,
        batch_size: cfg.batch_size,
        learning_rate: cfg.learning_rate,
        milestones: vec![],
        gamma: 1.0,
        samples: data.len(),
        loss: Loss::L1,
        // Re-solving the readout on the *empirical* distribution is the
        // "regressed with its full-precision reference" step of §3.3.3.
        ls_init: true,
    };
    train(&mut net_z, &data, &train_cfg, seed);
    Ok(net_z.denormalized(lo, hi))
}

/// Inverse of [`ApproxNet::denormalized`]: maps a raw-space network into
/// `z = (x − lo)/(hi − lo)` coordinates.
fn normalized(net: &ApproxNet, lo: f32, hi: f32) -> ApproxNet {
    let w = hi - lo;
    let n: Vec<f32> = net.first_layer_weights().iter().map(|&nx| nx * w).collect();
    let b: Vec<f32> = net
        .first_layer_biases()
        .iter()
        .zip(net.first_layer_weights())
        .map(|(&bx, &nx)| bx + nx * lo)
        .collect();
    ApproxNet::from_params(net.second_layer().to_vec(), n, b, net.output_bias())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::funcs::TargetFunction;
    use crate::metrics::mean_abs_error;
    use crate::recipe::{recipe_for, train_recipe};

    #[test]
    fn reservoir_keeps_capacity_and_counts() {
        let mut cap = ActivationCapture::new(10, 1);
        cap.record_slice(&[1.0, 2.0, 3.0]);
        assert_eq!(cap.len(), 3);
        for i in 0..1000 {
            cap.record(i as f32);
        }
        assert_eq!(cap.len(), 10);
        assert_eq!(cap.seen(), 1003);
    }

    #[test]
    fn reservoir_ignores_non_finite() {
        let mut cap = ActivationCapture::new(4, 1);
        cap.record(f32::NAN);
        cap.record(f32::INFINITY);
        assert!(cap.is_empty());
        assert_eq!(cap.seen(), 0);
    }

    #[test]
    fn reservoir_is_roughly_uniform() {
        // Record 0..10_000; the kept samples' mean should be near 5000.
        let mut cap = ActivationCapture::new(500, 9);
        for i in 0..10_000 {
            cap.record(i as f32);
        }
        let mean: f32 = cap.samples().iter().sum::<f32>() / cap.len() as f32;
        assert!((mean - 5000.0).abs() < 600.0, "reservoir mean {mean}");
    }

    #[test]
    fn calibration_improves_error_on_the_empirical_distribution() {
        // Train rsqrt on its wide domain, then calibrate toward a narrow
        // empirical band (what a LayerNorm actually sees).
        let recipe = recipe_for(TargetFunction::Rsqrt);
        let (net, _) = train_recipe(&recipe, 16, &crate::train::TrainConfig::fast(), 21);
        let band = (0.5f32, 4.0f32);
        let captured: Vec<f32> = (0..800)
            .map(|i| band.0 + (band.1 - band.0) * (i as f32 + 0.5) / 800.0)
            .collect();
        let calibrated = calibrate(
            &net,
            |x| TargetFunction::Rsqrt.eval(x),
            recipe.domain,
            &captured,
            &CalibrationConfig::default(),
            5,
        )
        .unwrap();
        let before = mean_abs_error(
            |x| net.eval(x),
            |x| TargetFunction::Rsqrt.eval(x),
            band,
            1_000,
        );
        let after = mean_abs_error(
            |x| calibrated.eval(x),
            |x| TargetFunction::Rsqrt.eval(x),
            band,
            1_000,
        );
        assert!(
            after < before,
            "calibration should reduce band error: {before} -> {after}"
        );
    }

    #[test]
    fn calibrate_rejects_empty_samples() {
        let net = ApproxNet::from_params(vec![1.0], vec![1.0], vec![0.0], 0.0);
        let err = calibrate(
            &net,
            |x| x,
            (0.0, 1.0),
            &[],
            &CalibrationConfig::default(),
            0,
        )
        .unwrap_err();
        assert_eq!(err, CoreError::NoCalibrationSamples);
    }

    #[test]
    fn normalized_roundtrips_with_denormalized() {
        let net = ApproxNet::from_params(vec![0.5, -1.0], vec![2.0, -0.01], vec![-1.0, 3.0], 0.7);
        let z = normalized(&net, -5.0, 5.0);
        let back = z.denormalized(-5.0, 5.0);
        for i in -10..=10 {
            let x = i as f32 * 0.5;
            assert!((net.eval(x) - back.eval(x)).abs() < 1e-4);
        }
    }
}
