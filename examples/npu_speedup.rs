//! System-level deployment: how much faster does a mobile NPU run
//! RoBERTa-base when its special-function unit holds NN-LUT hardware
//! instead of the I-BERT integer pipelines?
//!
//! Combines the arithmetic-unit cost model (paper Table 4) with the
//! cycle-level NPU simulation (paper Table 5).
//!
//! Run: `cargo run --release --example npu_speedup`

use nn_lut::hw::report::{table4_ratios, units};
use nn_lut::npu::{simulate, transformer_workload, ModelShape, NonlinearImpl, NpuConfig};

fn main() {
    // The arithmetic units themselves.
    let (nn_unit, ibert_unit) = units();
    println!("arithmetic units (7nm-class cost model):");
    for u in [&nn_unit, &ibert_unit] {
        println!(
            "  {:<8} area {:>8.1} um2   power {:>7.4} mW   critical path {:>5.2} ns",
            u.name,
            u.area_um2(),
            u.power_mw(),
            u.critical_path_ns()
        );
    }
    let (a, p, d) = table4_ratios();
    println!("  I-BERT/NN-LUT: {a:.2}x area, {p:.1}x power, {d:.2}x delay\n");

    // System-level effect on RoBERTa-base inference.
    let npu = NpuConfig::mobile_soc();
    let shape = ModelShape::roberta_base();
    println!("RoBERTa-base on the 2-engine mobile NPU (cycles in millions):");
    println!(
        "{:>8} {:>12} {:>12} {:>9} {:>22}",
        "seq", "I-BERT", "NN-LUT", "speedup", "non-linear share"
    );
    for seq in [16usize, 64, 256, 1024] {
        let w = transformer_workload(&shape, seq);
        let ib = simulate(&npu, &w, NonlinearImpl::IBert);
        let nn = simulate(&npu, &w, NonlinearImpl::NnLut);
        let ib_nl = (ib.gelu + ib.layernorm + ib.softmax) / ib.total() * 100.0;
        let nn_nl = (nn.gelu + nn.layernorm + nn.softmax) / nn.total() * 100.0;
        println!(
            "{seq:>8} {:>12.2} {:>12.2} {:>8.2}x {:>10.1}% -> {:>5.1}%",
            ib.total() / 1e6,
            nn.total() / 1e6,
            ib.total() / nn.total(),
            ib_nl,
            nn_nl
        );
    }

    println!("\nThe softmax share grows quadratically with sequence length,");
    println!("so NN-LUT's advantage compounds — up to ~26% end-to-end, from");
    println!("changing nothing but the non-linear-operation hardware.");
}
