//! Integer-only GELU via a polynomial erf (I-BERT Algorithm 3 / "i-GELU").
//!
//! `erf(x) ≈ sgn(x) · [a·(clip(|x|, max = −b) + b)² + c]` with
//! `a = −0.2888, b = −1.769, c = 1`, and
//! `GELU(x) = x · (1 + erf(x/√2)) / 2`.

use crate::fixed::Quantized;
use crate::poly::i_poly;

/// The I-BERT erf-polynomial constants.
pub const ERF_POLY: (f32, f32, f32) = (-0.2888, -1.769, 1.0);

/// Integer-only `erf(x)` for `x = v.q · v.scale`.
pub fn i_erf(v: Quantized) -> Quantized {
    let (a, b, c) = ERF_POLY;
    let q_clip_max = (-(b as f64) / v.scale as f64).floor() as i64;
    let sign = if v.q < 0 { -1 } else { 1 };
    let q_abs = v.q.abs().min(q_clip_max);
    let l = i_poly(
        Quantized {
            q: q_abs,
            scale: v.scale,
        },
        a,
        b,
        c,
    );
    Quantized {
        q: sign * l.q,
        scale: l.scale,
    }
}

/// Integer-only GELU for `x = v.q · v.scale`.
///
/// The output scale is `v.scale · S_erf / 2`; the multiply `q·(q_erf + q_1)`
/// is the second multiplier in the I-BERT datapath (paper Fig. 3b).
pub fn i_gelu(v: Quantized) -> Quantized {
    let sqrt2 = std::f32::consts::SQRT_2;
    let erf_in = Quantized {
        q: v.q,
        scale: v.scale / sqrt2,
    };
    let erf = i_erf(erf_in);
    let q_one = (1.0f64 / erf.scale as f64).floor() as i64;
    Quantized {
        q: v.q * (erf.q + q_one),
        scale: v.scale * erf.scale / 2.0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixed::scale_16bit;

    fn exact_erf(x: f32) -> f32 {
        // A&S 7.1.26 reference (identical to nnlut-core's).
        let xf = x as f64;
        let sign = if xf < 0.0 { -1.0 } else { 1.0 };
        let ax = xf.abs();
        let t = 1.0 / (1.0 + 0.3275911 * ax);
        let y = 1.0
            - (((((1.061405429 * t - 1.453152027) * t) + 1.421413741) * t - 0.284496736) * t
                + 0.254829592)
                * t
                * (-ax * ax).exp();
        (sign * y) as f32
    }

    fn exact_gelu(x: f32) -> f32 {
        0.5 * x * (1.0 + exact_erf(x / std::f32::consts::SQRT_2))
    }

    #[test]
    fn i_erf_matches_reference_within_polynomial_error() {
        // The I-BERT erf polynomial g(p) = a(p+b)²+c has an inherent error
        // of up to ~0.1 near p = 0 (g(0) ≈ 0.096, erf(0) = 0); that error is
        // annihilated in GELU by the multiplication with x. Away from zero
        // it tracks erf closely.
        let s = scale_16bit(4.0);
        for i in -40..=40 {
            let x = i as f32 * 0.1;
            let out = i_erf(Quantized::quantize(x, s)).real();
            let tol = if x.abs() < 1.0 { 0.11 } else { 0.02 };
            assert!((out - exact_erf(x)).abs() < tol, "x={x}: {out}");
        }
    }

    #[test]
    fn i_erf_is_odd_away_from_zero() {
        // sgn-based evaluation is exactly odd for x ≠ 0 (at x = 0 the
        // polynomial's +0.096 offset shows, by construction).
        let s = scale_16bit(4.0);
        for i in 1..=40 {
            let x = i as f32 * 0.1;
            let pos = i_erf(Quantized::quantize(x, s)).real();
            let neg = i_erf(Quantized::quantize(-x, s)).real();
            assert!((pos + neg).abs() < 2e-3, "x={x}");
        }
    }

    #[test]
    fn i_gelu_matches_reference() {
        let s = scale_16bit(5.0);
        for i in -50..=50 {
            let x = i as f32 * 0.1;
            let out = i_gelu(Quantized::quantize(x, s)).real();
            let want = exact_gelu(x);
            assert!(
                (out - want).abs() < 0.02 * (1.0 + want.abs()),
                "x={x}: {out} vs {want}"
            );
        }
    }

    #[test]
    fn i_gelu_saturates_correctly() {
        let s = scale_16bit(8.0);
        // Far positive ≈ identity, far negative ≈ 0.
        let hi = i_gelu(Quantized::quantize(6.0, s)).real();
        assert!((hi - 6.0).abs() < 0.1, "gelu(6) = {hi}");
        let lo = i_gelu(Quantized::quantize(-6.0, s)).real();
        assert!(lo.abs() < 0.1, "gelu(-6) = {lo}");
    }
}
