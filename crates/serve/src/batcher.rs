//! The dynamic request batcher: length-bucketed admission, FIFO within a
//! bucket, deadline-aware batch-close planning.
//!
//! Requests arrive with arbitrary token lengths; padded-batch compute cost
//! scales with `sequences × max_len`, so packing a 3-token request next to
//! a 128-token one wastes 125 padded rows. The batcher therefore keeps one
//! FIFO queue per **length bucket** ([`BatchPolicy::bucket_edges`]): a
//! request is admitted to the narrowest bucket that fits its length, and a
//! batch is always packed from a *single* bucket, so members have similar
//! lengths and the padded area stays close to the real token count. With
//! no edges configured there is exactly one bucket and the batcher
//! degrades to the plain FIFO of the synchronous server's first iteration.
//!
//! Two invariants keep the serving layer's determinism and fairness story
//! intact:
//!
//! 1. **FIFO within a bucket** — requests inside one bucket are packed in
//!    arrival order, and the bucket chosen for the next batch is the one
//!    whose *front* request is oldest, so the oldest waiting request is
//!    always in the next batch. Deadlines shape *when* a batch closes
//!    ([`ClosePolicy`]), never *what order* requests are packed.
//! 2. **Composition is a pure function of queue contents + policy** — no
//!    randomness, no load feedback. And because the batched encoder masks
//!    attention, with an FP32/FP16 body and exact/LUT backends the
//!    *responses* don't depend on composition at all — batching is purely
//!    a throughput decision. The per-tensor-scaled paths (INT8 GEMM
//!    bodies, the I-BERT GELU backend) see their quantization scales shift
//!    with the batch, as they would on real hardware.

use std::collections::VecDeque;
use std::time::{Duration, Instant};

use nnlut_transformer::PaddedBatch;

use crate::server::RequestId;

/// Admission budget for one packed batch, plus the length-bucket layout.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BatchPolicy {
    /// Maximum sequences per batch.
    pub max_batch: usize,
    /// Maximum padded area (`sequences × max_len`) per batch. A single
    /// over-budget request still forms its own batch — the server must
    /// never deadlock on a long input.
    pub max_padded_tokens: usize,
    /// Length-bucket upper edges, strictly increasing. A request of
    /// length `L` is admitted to the first bucket whose edge is `≥ L`;
    /// longer requests land in the implicit overflow bucket, so there are
    /// always `bucket_edges.len() + 1` buckets. Empty (the default) means
    /// one bucket: plain FIFO admission.
    pub bucket_edges: Vec<usize>,
}

impl BatchPolicy {
    /// A policy sized for the synthetic RoBERTa-class workloads: up to 16
    /// sequences or 2048 padded positions, whichever binds first, single
    /// FIFO bucket.
    pub fn default_policy() -> Self {
        Self {
            max_batch: 16,
            max_padded_tokens: 2048,
            bucket_edges: Vec::new(),
        }
    }

    /// Serve one request per batch (the no-batching baseline).
    pub fn unbatched() -> Self {
        Self {
            max_batch: 1,
            max_padded_tokens: usize::MAX,
            bucket_edges: Vec::new(),
        }
    }

    /// The default budget with length-bucketed admission at `edges`.
    pub fn bucketed(edges: Vec<usize>) -> Self {
        Self {
            bucket_edges: edges,
            ..Self::default_policy()
        }
    }

    /// Replaces the bucket layout, keeping the area budget.
    pub fn with_buckets(mut self, edges: Vec<usize>) -> Self {
        self.bucket_edges = edges;
        self
    }

    /// Number of buckets (always `bucket_edges.len() + 1`; the last is
    /// the overflow bucket).
    pub fn bucket_count(&self) -> usize {
        self.bucket_edges.len() + 1
    }

    /// The bucket a request of length `len` is admitted to.
    pub fn bucket_index(&self, len: usize) -> usize {
        self.bucket_edges
            .iter()
            .position(|&edge| len <= edge)
            .unwrap_or(self.bucket_edges.len())
    }
}

impl Default for BatchPolicy {
    fn default() -> Self {
        Self::default_policy()
    }
}

/// When an *under-filled* batch should close anyway (the full-budget close
/// is always armed). Used by the asynchronous front door's worker; the
/// synchronous server closes unconditionally on `drain`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ClosePolicy {
    /// Close once the oldest queued request has waited this long —
    /// the latency floor a lone request pays under light traffic.
    pub max_batch_age: Duration,
    /// Close early when any queued request's deadline is within this
    /// slack — the headroom left for the batch to actually encode.
    pub deadline_slack: Duration,
}

impl ClosePolicy {
    /// Batches wait at most 20 ms for company; deadline-pressured batches
    /// close 5 ms before the deadline.
    pub fn default_policy() -> Self {
        Self {
            max_batch_age: Duration::from_millis(20),
            deadline_slack: Duration::from_millis(5),
        }
    }

    /// The prefill-starvation bound: under continuous decode pressure
    /// (decode-priority closes firing back to back), a queued
    /// encode/prefill request still closes once its bucket's front has
    /// waited this long — `3 × max_batch_age`. Without decode pressure
    /// the ordinary [`ClosePolicy::max_batch_age`] close fires first, so
    /// this bound is only visible when a generation stream would
    /// otherwise monopolize the worker (the starvation regression test
    /// pins it).
    pub fn max_prefill_wait(&self) -> Duration {
        self.max_batch_age * 3
    }
}

impl Default for ClosePolicy {
    fn default() -> Self {
        Self::default_policy()
    }
}

/// Admission watermarks for reject-at-door backpressure.
///
/// A queue with no ceiling grows without bound under sustained overload:
/// every queued request waits longer, deadlines die in bulk, and the
/// server melts instead of shedding. `ServePolicy` caps what the queue may
/// hold — a submission that would push **either** watermark over its limit
/// is rejected *immediately* (`ServeError::Overloaded` on the async front
/// door, an `Err` from the sync `try_submit`), leaving every already-queued
/// request untouched. Rejection is strictly newest-arrival-first: the door
/// closes, the queue never reshuffles, so FIFO fairness is preserved.
///
/// The default is unbounded (both watermarks at `usize::MAX`) — existing
/// callers see no behavior change until they opt in.
///
/// # Examples
///
/// ```
/// use nnlut_serve::ServePolicy;
///
/// let policy = ServePolicy::with_max_queue_depth(128);
/// assert!(policy.admits(128, 10_000));   // at the watermark: fine
/// assert!(!policy.admits(129, 10_000));  // above it: reject at the door
/// assert!(ServePolicy::unbounded().admits(usize::MAX, usize::MAX));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServePolicy {
    /// Maximum requests the queue may hold. A submission that would make
    /// the depth exceed this is rejected. `usize::MAX` = unbounded.
    pub max_queue_depth: usize,
    /// Maximum **queued area** — the sum of queued requests' token
    /// lengths (the lower bound of the padded compute the backlog
    /// represents). A submission that would push the sum past this is
    /// rejected. `usize::MAX` = unbounded.
    pub max_queued_tokens: usize,
}

impl ServePolicy {
    /// No backpressure: every valid request is admitted (the default).
    pub fn unbounded() -> Self {
        Self {
            max_queue_depth: usize::MAX,
            max_queued_tokens: usize::MAX,
        }
    }

    /// Depth watermark only: at most `depth` requests queued.
    pub fn with_max_queue_depth(depth: usize) -> Self {
        Self {
            max_queue_depth: depth,
            ..Self::unbounded()
        }
    }

    /// Area watermark only: at most `tokens` real tokens queued.
    pub fn with_max_queued_tokens(tokens: usize) -> Self {
        Self {
            max_queued_tokens: tokens,
            ..Self::unbounded()
        }
    }

    /// Whether a queue at `depth` requests / `queued_tokens` real tokens
    /// (*after* admitting the candidate) is within both watermarks.
    pub fn admits(&self, depth: usize, queued_tokens: usize) -> bool {
        depth <= self.max_queue_depth && queued_tokens <= self.max_queued_tokens
    }
}

impl Default for ServePolicy {
    fn default() -> Self {
        Self::unbounded()
    }
}

/// Why a batch was closed — recorded per batch in the serving metrics.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CloseReason {
    /// The area/count budget was the binding constraint.
    Full,
    /// The oldest member hit [`ClosePolicy::max_batch_age`].
    Aged,
    /// A queued deadline came within [`ClosePolicy::deadline_slack`].
    Deadline,
    /// Unconditional flush: a synchronous `drain`/`step`, or the
    /// asynchronous server shutting down.
    Drain,
    /// A decode-priority close: generation steps were waiting and inter-
    /// token latency outranks packing density, so the decode plane closed
    /// as soon as the worker could take it.
    Decode,
}

impl std::fmt::Display for CloseReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            CloseReason::Full => "full",
            CloseReason::Aged => "aged",
            CloseReason::Deadline => "deadline",
            CloseReason::Drain => "drain",
            CloseReason::Decode => "decode",
        })
    }
}

/// One queued encode request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PendingRequest {
    /// The id handed back to the submitter.
    pub id: RequestId,
    /// The token sequence to encode.
    pub tokens: Vec<usize>,
    /// When the request entered the queue (queue-wait metrics run off
    /// this).
    pub queued_at: Instant,
    /// Absolute completion deadline, if the submitter set one. Expired
    /// requests are culled by [`Batcher::take_expired`], never encoded.
    pub deadline: Option<Instant>,
}

/// One queued single-token decode step — the scheduling record of a
/// generation rejoining the queue after emitting a token. The serving
/// layer owns the sequence's KV cache and next token; the batcher only
/// decides *when* the step runs and with which batch-mates.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DecodeStep {
    /// The generation request this step advances.
    pub id: RequestId,
    /// Cached positions the step's attention spans — its compute-cost
    /// signal. The step contributes `context_len + 1` to the decode
    /// batch's area (the new row attends over the context plus itself).
    pub context_len: usize,
    /// When the step rejoined the queue (inter-token latency runs off
    /// this).
    pub queued_at: Instant,
    /// The generation's absolute deadline, if any. A lapsed deadline
    /// culls the step via [`Batcher::take_expired_decode`].
    pub deadline: Option<Instant>,
}

/// One closed batch of decode steps, as produced by
/// [`Batcher::close_decode`]. Parallel arrays in FIFO (rejoin) order.
#[derive(Debug, Clone)]
pub struct ClosedDecodeBatch {
    /// Member generation ids.
    pub ids: Vec<RequestId>,
    /// Member deadlines, parallel to `ids`.
    pub deadlines: Vec<Option<Instant>>,
    /// Queue wait of each step at close time, parallel to `ids`.
    pub queue_waits: Vec<Duration>,
    /// Total attention area of the batch: `Σ (context_len + 1)` — the
    /// analog of a padded batch's `sequences × max_len`.
    pub context_tokens: usize,
    /// Why the batch closed.
    pub reason: CloseReason,
}

/// Which plane [`Batcher::plan_close`] decided to close.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CloseTarget {
    /// Close length bucket `i` via [`Batcher::close_bucket`].
    Bucket(usize),
    /// Close the decode plane via [`Batcher::close_decode`].
    Decode,
}

/// One packed batch plus its admission bookkeeping, as produced by
/// [`Batcher::close_bucket`].
#[derive(Debug, Clone)]
pub struct ClosedBatch {
    /// Member request ids, in FIFO (arrival) order.
    pub ids: Vec<RequestId>,
    /// Member deadlines, parallel to `ids`.
    pub deadlines: Vec<Option<Instant>>,
    /// Queue wait of each member at close time, parallel to `ids`.
    pub queue_waits: Vec<Duration>,
    /// The packed, padded batch.
    pub batch: PaddedBatch,
    /// Bucket the batch was packed from.
    pub bucket: usize,
    /// Why the batch closed.
    pub reason: CloseReason,
}

/// Length-bucketed admission queue + greedy per-bucket packer.
///
/// # Examples
///
/// ```
/// use nnlut_serve::{BatchPolicy, Batcher};
///
/// // Two length buckets (≤4 tokens, >4 tokens), up to 2 sequences each.
/// let mut b = Batcher::new(BatchPolicy {
///     max_batch: 2,
///     max_padded_tokens: 64,
///     bucket_edges: vec![4],
/// });
/// b.push(0, vec![1, 2, 3]);
/// b.push(1, vec![9; 40]);     // long request: overflow bucket
/// b.push(2, vec![4]);
/// let (ids, batch) = b.next_batch().unwrap();
/// assert_eq!(ids, vec![0, 2]);     // short bucket packs together…
/// assert_eq!(batch.max_len(), 3);  // …so padding stays tight
/// let (ids, batch) = b.next_batch().unwrap();
/// assert_eq!(ids, vec![1]);        // the long request rides alone
/// assert_eq!(batch.max_len(), 40);
/// assert_eq!(b.queue_depth(), 0);
/// ```
#[derive(Debug, Clone)]
pub struct Batcher {
    policy: BatchPolicy,
    buckets: Vec<VecDeque<PendingRequest>>,
    /// Sum of queued requests' token lengths, maintained O(1) on
    /// push/pop so the backpressure check never walks the queue.
    queued_tokens: usize,
    /// The decode plane: FIFO of single-token generation steps, separate
    /// from the length buckets because a decode step's cost profile is a
    /// different shape (one new row, attention over a cached context) and
    /// its latency target is per-token, not per-request.
    decode: VecDeque<DecodeStep>,
}

impl Batcher {
    /// An empty batcher under `policy`.
    ///
    /// # Panics
    ///
    /// Panics if the policy admits nothing (`max_batch == 0` or
    /// `max_padded_tokens == 0`) or the bucket edges are not strictly
    /// increasing positive lengths.
    pub fn new(policy: BatchPolicy) -> Self {
        assert!(policy.max_batch > 0, "max_batch must be positive");
        assert!(
            policy.max_padded_tokens > 0,
            "max_padded_tokens must be positive"
        );
        for pair in policy.bucket_edges.windows(2) {
            assert!(
                pair[0] < pair[1],
                "bucket edges must be strictly increasing: {:?}",
                policy.bucket_edges
            );
        }
        if let Some(&first) = policy.bucket_edges.first() {
            assert!(first > 0, "bucket edges must be positive lengths");
        }
        let buckets = (0..policy.bucket_count())
            .map(|_| VecDeque::new())
            .collect();
        Self {
            policy,
            buckets,
            queued_tokens: 0,
            decode: VecDeque::new(),
        }
    }

    /// The admission policy.
    pub fn policy(&self) -> &BatchPolicy {
        &self.policy
    }

    /// Enqueues a request with no deadline, timestamped now.
    ///
    /// # Panics
    ///
    /// Panics if `tokens` is empty (there is nothing to encode).
    pub fn push(&mut self, id: RequestId, tokens: Vec<usize>) {
        self.push_at(id, tokens, Instant::now(), None);
    }

    /// Enqueues a request with an explicit arrival timestamp and optional
    /// absolute deadline. FIFO order within a bucket is push order;
    /// `queued_at` only feeds the age/wait bookkeeping.
    ///
    /// # Panics
    ///
    /// Panics if `tokens` is empty.
    pub fn push_at(
        &mut self,
        id: RequestId,
        tokens: Vec<usize>,
        queued_at: Instant,
        deadline: Option<Instant>,
    ) {
        assert!(!tokens.is_empty(), "cannot enqueue an empty request");
        let bucket = self.policy.bucket_index(tokens.len());
        self.queued_tokens += tokens.len();
        self.buckets[bucket].push_back(PendingRequest {
            id,
            tokens,
            queued_at,
            deadline,
        });
    }

    /// Number of requests waiting across all buckets.
    pub fn queue_depth(&self) -> usize {
        self.buckets.iter().map(VecDeque::len).sum()
    }

    /// Sum of queued requests' token lengths — the queued-area signal the
    /// [`ServePolicy`] backpressure watermark runs on. O(1).
    pub fn queued_tokens(&self) -> usize {
        self.queued_tokens
    }

    /// Requests waiting per bucket (length `policy.bucket_count()`).
    pub fn bucket_depths(&self) -> Vec<usize> {
        self.buckets.iter().map(VecDeque::len).collect()
    }

    /// Enqueues one generation decode step (the sequence rejoining the
    /// queue after a token). Decode steps never count against the
    /// [`ServePolicy`] door watermarks — the generation was admitted
    /// once, at submit time.
    pub fn push_decode(
        &mut self,
        id: RequestId,
        context_len: usize,
        queued_at: Instant,
        deadline: Option<Instant>,
    ) {
        self.decode.push_back(DecodeStep {
            id,
            context_len,
            queued_at,
            deadline,
        });
    }

    /// Decode steps waiting in the decode plane.
    pub fn decode_depth(&self) -> usize {
        self.decode.len()
    }

    /// True when nothing is queued on either plane.
    pub fn is_empty(&self) -> bool {
        self.buckets.iter().all(VecDeque::is_empty) && self.decode.is_empty()
    }

    /// Removes and returns every queued request whose deadline is at or
    /// before `now`, in arrival order. The caller resolves them with a
    /// timeout error; they are never encoded.
    pub fn take_expired(&mut self, now: Instant) -> Vec<PendingRequest> {
        // Fast path: the worker calls this on every wakeup, so a queue
        // with no lapsed deadline must not pay the rebuild below.
        let bucket_earliest = self
            .buckets
            .iter()
            .flatten()
            .filter_map(|r| r.deadline)
            .min();
        if bucket_earliest.is_none_or(|d| d > now) {
            return Vec::new();
        }
        let mut expired = Vec::new();
        for bucket in &mut self.buckets {
            let mut keep = VecDeque::with_capacity(bucket.len());
            for req in bucket.drain(..) {
                match req.deadline {
                    Some(d) if d <= now => expired.push(req),
                    _ => keep.push_back(req),
                }
            }
            *bucket = keep;
        }
        self.queued_tokens -= expired.iter().map(|r| r.tokens.len()).sum::<usize>();
        expired.sort_by_key(|r| (r.queued_at, r.id));
        expired
    }

    /// Removes and returns every queued decode step whose generation
    /// deadline is at or before `now`, in rejoin order. The caller
    /// resolves the generation with a timeout error (and frees its KV
    /// cache); the step is never run.
    pub fn take_expired_decode(&mut self, now: Instant) -> Vec<DecodeStep> {
        if self
            .decode
            .iter()
            .filter_map(|s| s.deadline)
            .min()
            .is_none_or(|d| d > now)
        {
            return Vec::new();
        }
        let mut expired = Vec::new();
        let mut keep = VecDeque::with_capacity(self.decode.len());
        for step in self.decode.drain(..) {
            match step.deadline {
                Some(d) if d <= now => expired.push(step),
                _ => keep.push_back(step),
            }
        }
        self.decode = keep;
        expired
    }

    /// The earliest deadline among queued requests — both planes, so a
    /// deadline riding a decode step shapes close planning and worker
    /// wakeups exactly like one riding a queued prefill.
    pub fn earliest_deadline(&self) -> Option<Instant> {
        self.buckets
            .iter()
            .flatten()
            .filter_map(|r| r.deadline)
            .chain(self.decode.iter().filter_map(|s| s.deadline))
            .min()
    }

    /// Arrival time of the oldest front request (the next batch's oldest
    /// member under FIFO-within-bucket packing).
    pub fn oldest_front(&self) -> Option<Instant> {
        self.front_keys().map(|(at, _, _)| at).min()
    }

    /// `(queued_at, id, bucket)` for each non-empty bucket's front.
    fn front_keys(&self) -> impl Iterator<Item = (Instant, RequestId, usize)> + '_ {
        self.buckets
            .iter()
            .enumerate()
            .filter_map(|(b, q)| q.front().map(|r| (r.queued_at, r.id, b)))
    }

    /// The bucket the next unconditional (`Drain`) batch should come
    /// from: the one whose front request is oldest (ties broken by id),
    /// so the longest-waiting request is always served next.
    pub fn plan_drain(&self) -> Option<usize> {
        self.front_keys().min().map(|(_, _, b)| b)
    }

    /// Greedy pack size of `bucket` under the policy: `(count, budget_limited)`.
    fn pack_plan(&self, bucket: usize) -> (usize, bool) {
        let queue = &self.buckets[bucket];
        let mut count = 0usize;
        let mut max_len = 0usize;
        for req in queue {
            let candidate_max = max_len.max(req.tokens.len());
            let candidate_area = (count + 1).saturating_mul(candidate_max);
            let fits = count < self.policy.max_batch
                && (count == 0 || candidate_area <= self.policy.max_padded_tokens);
            if !fits {
                return (count, true);
            }
            count += 1;
            max_len = candidate_max;
        }
        // Queue exhausted — but a batch that already hit the sequence cap
        // is budget-limited even with nothing left behind it.
        (count, count == self.policy.max_batch && count > 0)
    }

    /// Decides whether an asynchronous worker should close a batch *now*,
    /// and from which plane/bucket. Checks, in priority order:
    ///
    /// 1. any queued deadline within `close.deadline_slack`, on either
    ///    plane ([`CloseReason::Deadline`] — closing the plane or bucket
    ///    *containing* the pressured request);
    /// 2. a bucket front that has waited past
    ///    [`ClosePolicy::max_prefill_wait`] ([`CloseReason::Aged`]) — the
    ///    anti-starvation guard that lets a queued prefill preempt an
    ///    otherwise-endless stream of decode-priority closes;
    /// 3. a non-empty decode plane ([`CloseReason::Decode`]) — generation
    ///    steps close as soon as the worker can take them, keeping
    ///    inter-token latency flat while prefills stream in;
    /// 4. the oldest front request exceeding `close.max_batch_age`
    ///    ([`CloseReason::Aged`]);
    /// 5. a bucket whose greedy pack is budget-limited
    ///    ([`CloseReason::Full`]).
    ///
    /// Urgency outranks throughput on purpose: under sustained arrivals
    /// one bucket can be permanently `Full`, and checking it first would
    /// starve deadline-pressured or aged requests sitting in *other*
    /// buckets until they expire. (Under that same overload the aged
    /// bucket is deep, so its close still packs a full batch — the
    /// ordering costs essentially no padding efficiency.) Decode sits
    /// between the urgency closes and the throughput closes for the same
    /// reason in mirror image: it wins the common race against `Aged`
    /// so token cadence never stalls behind a filling prefill batch, but
    /// rule 2 bounds how long it can keep winning. Returns `None` when no
    /// condition fires (the worker should sleep until
    /// [`Batcher::next_event`]).
    pub fn plan_close(
        &self,
        now: Instant,
        close: &ClosePolicy,
    ) -> Option<(CloseTarget, CloseReason)> {
        // Deadline pressure: some queued request (anywhere on either
        // plane) is within slack of its deadline; close what holds it.
        let bucket_pressured = self
            .buckets
            .iter()
            .enumerate()
            .flat_map(|(b, q)| q.iter().map(move |r| (r, b)))
            .filter_map(|(r, b)| r.deadline.map(|d| (d, r.id, CloseTarget::Bucket(b))))
            .min_by_key(|&(d, id, _)| (d, id));
        let decode_pressured = self
            .decode
            .iter()
            .filter_map(|s| s.deadline.map(|d| (d, s.id, CloseTarget::Decode)))
            .min_by_key(|&(d, id, _)| (d, id));
        let pressured = match (bucket_pressured, decode_pressured) {
            (Some(a), Some(b)) => Some(if (a.0, a.1) <= (b.0, b.1) { a } else { b }),
            (a, b) => a.or(b),
        };
        if let Some((deadline, _, target)) = pressured {
            if deadline.saturating_duration_since(now) <= close.deadline_slack {
                return Some((target, CloseReason::Deadline));
            }
        }
        // Anti-starvation: a bucket front that has out-waited even the
        // prefill bound preempts the decode plane.
        if let Some((queued_at, _, bucket)) = self.front_keys().min() {
            if now.saturating_duration_since(queued_at) >= close.max_prefill_wait() {
                return Some((CloseTarget::Bucket(bucket), CloseReason::Aged));
            }
        }
        // Decode priority: waiting generation steps go next.
        if !self.decode.is_empty() {
            return Some((CloseTarget::Decode, CloseReason::Decode));
        }
        // Aged: the globally oldest front has waited long enough.
        if let Some((queued_at, _, bucket)) = self.front_keys().min() {
            if now.saturating_duration_since(queued_at) >= close.max_batch_age {
                return Some((CloseTarget::Bucket(bucket), CloseReason::Aged));
            }
        }
        // Full: among budget-limited buckets, pick the oldest front.
        let full = self
            .front_keys()
            .filter(|&(_, _, b)| self.pack_plan(b).1)
            .min();
        if let Some((_, _, bucket)) = full {
            return Some((CloseTarget::Bucket(bucket), CloseReason::Full));
        }
        None
    }

    /// The next instant at which [`Batcher::plan_close`] could start
    /// firing without a new arrival: the earlier of the oldest front
    /// aging out and the earliest deadline (either plane) entering its
    /// slack window. `None` when the queue is empty (sleep until woken).
    /// A non-empty decode plane never needs a timer — `plan_close` fires
    /// for it immediately, so the worker only consults this after a
    /// `None` plan, which implies the decode plane is empty.
    pub fn next_event(&self, close: &ClosePolicy) -> Option<Instant> {
        let aged = self.oldest_front().map(|at| at + close.max_batch_age);
        let pressured = self
            .earliest_deadline()
            .map(|d| d.checked_sub(close.deadline_slack).unwrap_or(d));
        match (aged, pressured) {
            (Some(a), Some(p)) => Some(a.min(p)),
            (a, p) => a.or(p),
        }
    }

    /// Packs and removes the next batch from `bucket`: takes requests
    /// from the bucket front while the running `count × max_len` stays
    /// within the policy (the first request is always admitted). The
    /// recorded close reason is [`CloseReason::Full`] whenever the budget
    /// was the binding constraint, otherwise `fallback`.
    ///
    /// # Panics
    ///
    /// Panics if `bucket` is out of range or empty.
    pub fn close_bucket(
        &mut self,
        bucket: usize,
        now: Instant,
        fallback: CloseReason,
    ) -> ClosedBatch {
        let (count, budget_limited) = self.pack_plan(bucket);
        assert!(count > 0, "cannot close an empty bucket {bucket}");
        let mut ids = Vec::with_capacity(count);
        let mut deadlines = Vec::with_capacity(count);
        let mut queue_waits = Vec::with_capacity(count);
        let mut seqs: Vec<Vec<usize>> = Vec::with_capacity(count);
        for _ in 0..count {
            let req = self.buckets[bucket]
                .pop_front()
                .expect("pack_plan counted it");
            self.queued_tokens -= req.tokens.len();
            ids.push(req.id);
            deadlines.push(req.deadline);
            queue_waits.push(now.saturating_duration_since(req.queued_at));
            seqs.push(req.tokens);
        }
        ClosedBatch {
            ids,
            deadlines,
            queue_waits,
            batch: PaddedBatch::pack(&seqs),
            bucket,
            reason: if budget_limited {
                CloseReason::Full
            } else {
                fallback
            },
        }
    }

    /// Greedy pack size of the decode plane under the policy:
    /// `(count, budget_limited)`. A decode step's area is
    /// `context_len + 1`; the batch packs from the front while the
    /// running area total stays within `max_padded_tokens` and the count
    /// within `max_batch` (the first step is always admitted).
    fn decode_pack_plan(&self) -> (usize, bool) {
        let mut count = 0usize;
        let mut area = 0usize;
        for step in &self.decode {
            let candidate_area = area + step.context_len + 1;
            let fits = count < self.policy.max_batch
                && (count == 0 || candidate_area <= self.policy.max_padded_tokens);
            if !fits {
                return (count, true);
            }
            count += 1;
            area = candidate_area;
        }
        (count, count == self.policy.max_batch && count > 0)
    }

    /// Packs and removes the next batch of decode steps (FIFO from the
    /// decode plane, under the same count/area budget as
    /// [`Batcher::close_bucket`] — see the private `decode_pack_plan`).
    /// The recorded reason upgrades to [`CloseReason::Full`] when the
    /// budget was the binding constraint, mirroring the bucket close.
    ///
    /// # Panics
    ///
    /// Panics if the decode plane is empty.
    pub fn close_decode(&mut self, now: Instant, fallback: CloseReason) -> ClosedDecodeBatch {
        let (count, budget_limited) = self.decode_pack_plan();
        assert!(count > 0, "cannot close an empty decode plane");
        let mut ids = Vec::with_capacity(count);
        let mut deadlines = Vec::with_capacity(count);
        let mut queue_waits = Vec::with_capacity(count);
        let mut context_tokens = 0usize;
        for _ in 0..count {
            let step = self
                .decode
                .pop_front()
                .expect("decode_pack_plan counted it");
            context_tokens += step.context_len + 1;
            ids.push(step.id);
            deadlines.push(step.deadline);
            queue_waits.push(now.saturating_duration_since(step.queued_at));
        }
        ClosedDecodeBatch {
            ids,
            deadlines,
            queue_waits,
            context_tokens,
            reason: if budget_limited {
                CloseReason::Full
            } else {
                fallback
            },
        }
    }

    /// Convenience for synchronous callers: closes the next `Drain` batch
    /// (oldest front bucket first). Returns the member ids alongside the
    /// padded batch, or `None` when the queue is empty.
    pub fn next_batch(&mut self) -> Option<(Vec<RequestId>, PaddedBatch)> {
        let closed = self.next_closed_batch()?;
        Some((closed.ids, closed.batch))
    }

    /// [`Batcher::next_batch`] with the full bookkeeping attached.
    pub fn next_closed_batch(&mut self) -> Option<ClosedBatch> {
        let bucket = self.plan_drain()?;
        Some(self.close_bucket(bucket, Instant::now(), CloseReason::Drain))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drain_ids(b: &mut Batcher) -> Vec<Vec<RequestId>> {
        let mut out = Vec::new();
        while let Some((ids, _)) = b.next_batch() {
            out.push(ids);
        }
        out
    }

    fn fifo_policy(max_batch: usize, max_padded_tokens: usize) -> BatchPolicy {
        BatchPolicy {
            max_batch,
            max_padded_tokens,
            bucket_edges: Vec::new(),
        }
    }

    #[test]
    fn fifo_order_is_preserved_across_batches() {
        let mut b = Batcher::new(fifo_policy(2, usize::MAX));
        for id in 0..5 {
            b.push(id, vec![1; 4]);
        }
        assert_eq!(drain_ids(&mut b), vec![vec![0, 1], vec![2, 3], vec![4]]);
    }

    #[test]
    fn padded_area_budget_closes_batches() {
        // 10-token budget: [3-tok, 3-tok] pads to 2×3=6 ✓, adding a 4-tok
        // request would pad to 3×4=12 ✗.
        let mut b = Batcher::new(fifo_policy(16, 10));
        b.push(0, vec![1; 3]);
        b.push(1, vec![1; 3]);
        b.push(2, vec![1; 4]);
        let (ids, batch) = b.next_batch().unwrap();
        assert_eq!(ids, vec![0, 1]);
        assert_eq!(batch.padded_tokens(), 6);
        let (ids, _) = b.next_batch().unwrap();
        assert_eq!(ids, vec![2]);
    }

    #[test]
    fn over_budget_request_still_forms_a_singleton_batch() {
        let mut b = Batcher::new(fifo_policy(16, 4));
        b.push(7, vec![1; 9]);
        let (ids, batch) = b.next_batch().unwrap();
        assert_eq!(ids, vec![7]);
        assert_eq!(batch.max_len(), 9);
        assert!(b.next_batch().is_none());
    }

    #[test]
    fn packing_is_deterministic() {
        let make = || {
            let mut b = Batcher::new(BatchPolicy::bucketed(vec![8, 32, 64]));
            for id in 0..40 {
                b.push(id, vec![1; 1 + (id as usize * 37) % 100]);
            }
            drain_ids(&mut b)
        };
        assert_eq!(make(), make());
    }

    #[test]
    fn buckets_separate_lengths_and_keep_fifo_within() {
        let mut b = Batcher::new(BatchPolicy {
            max_batch: 8,
            max_padded_tokens: usize::MAX,
            bucket_edges: vec![4, 16],
        });
        // Interleaved short/medium/long arrivals.
        b.push(0, vec![1; 2]); // short
        b.push(1, vec![1; 10]); // medium
        b.push(2, vec![1; 30]); // long (overflow bucket)
        b.push(3, vec![1; 4]); // short
        b.push(4, vec![1; 16]); // medium
        assert_eq!(b.bucket_depths(), vec![2, 2, 1]);
        // Oldest front first: short (id 0), then medium (id 1), then long.
        assert_eq!(drain_ids(&mut b), vec![vec![0, 3], vec![1, 4], vec![2]]);
    }

    #[test]
    fn bucket_index_maps_lengths_to_edges() {
        let p = BatchPolicy::bucketed(vec![4, 16, 64]);
        assert_eq!(p.bucket_count(), 4);
        assert_eq!(p.bucket_index(1), 0);
        assert_eq!(p.bucket_index(4), 0);
        assert_eq!(p.bucket_index(5), 1);
        assert_eq!(p.bucket_index(16), 1);
        assert_eq!(p.bucket_index(64), 2);
        assert_eq!(p.bucket_index(65), 3);
    }

    #[test]
    fn take_expired_culls_by_deadline_in_arrival_order() {
        let mut b = Batcher::new(BatchPolicy::bucketed(vec![4]));
        let t0 = Instant::now();
        let soon = t0 + Duration::from_millis(1);
        let late = t0 + Duration::from_secs(60);
        b.push_at(0, vec![1; 2], t0, Some(soon));
        b.push_at(1, vec![1; 8], t0, Some(late));
        b.push_at(2, vec![1; 8], t0, Some(soon));
        b.push_at(3, vec![1; 2], t0, None);
        let expired = b.take_expired(t0 + Duration::from_millis(5));
        let ids: Vec<RequestId> = expired.iter().map(|r| r.id).collect();
        assert_eq!(ids, vec![0, 2]);
        assert_eq!(b.queue_depth(), 2);
        assert_eq!(b.earliest_deadline(), Some(late));
    }

    #[test]
    fn plan_close_fires_full_then_aged_then_deadline() {
        let close = ClosePolicy {
            max_batch_age: Duration::from_millis(10),
            deadline_slack: Duration::from_millis(2),
        };
        let t0 = Instant::now();
        // Nothing queued: no close, no next event.
        let b = Batcher::new(BatchPolicy::bucketed(vec![4]));
        assert_eq!(b.plan_close(t0, &close), None);
        assert_eq!(b.next_event(&close), None);

        // A bucket that can fill the sequence cap closes Full immediately.
        let mut b = Batcher::new(BatchPolicy {
            max_batch: 2,
            max_padded_tokens: usize::MAX,
            bucket_edges: vec![4],
        });
        b.push_at(0, vec![1; 2], t0, None);
        assert_eq!(b.plan_close(t0, &close), None);
        b.push_at(1, vec![1; 2], t0, None);
        assert_eq!(
            b.plan_close(t0, &close),
            Some((CloseTarget::Bucket(0), CloseReason::Full))
        );

        // An under-filled batch closes once its front ages out…
        let mut b = Batcher::new(BatchPolicy::bucketed(vec![4]));
        b.push_at(0, vec![1; 2], t0, None);
        assert_eq!(b.plan_close(t0 + Duration::from_millis(5), &close), None);
        assert_eq!(
            b.plan_close(t0 + Duration::from_millis(10), &close),
            Some((CloseTarget::Bucket(0), CloseReason::Aged))
        );
        assert_eq!(b.next_event(&close), Some(t0 + close.max_batch_age));

        // …and a deadline inside its slack window closes the bucket that
        // holds the pressured request, even if another bucket is older.
        let mut b = Batcher::new(BatchPolicy::bucketed(vec![4]));
        b.push_at(0, vec![1; 2], t0, None);
        let deadline = t0 + Duration::from_millis(6);
        b.push_at(1, vec![1; 8], t0, Some(deadline));
        assert_eq!(b.plan_close(t0 + Duration::from_millis(3), &close), None);
        assert_eq!(
            b.plan_close(t0 + Duration::from_millis(4), &close),
            Some((CloseTarget::Bucket(1), CloseReason::Deadline))
        );
        assert_eq!(
            b.next_event(&close),
            Some(deadline - close.deadline_slack),
            "deadline slack fires before the 10 ms age"
        );
    }

    #[test]
    fn urgency_outranks_a_full_bucket() {
        let close = ClosePolicy {
            max_batch_age: Duration::from_millis(10),
            deadline_slack: Duration::from_millis(2),
        };
        let t0 = Instant::now();
        // Bucket 0 can fill the 2-sequence cap; bucket 1 holds one aged
        // request. Closing Full first would starve bucket 1 under
        // sustained short-request arrivals — Aged must win.
        let mut b = Batcher::new(BatchPolicy {
            max_batch: 2,
            max_padded_tokens: usize::MAX,
            bucket_edges: vec![4],
        });
        b.push_at(0, vec![1; 8], t0, None);
        b.push_at(1, vec![1; 2], t0 + Duration::from_millis(9), None);
        b.push_at(2, vec![1; 2], t0 + Duration::from_millis(9), None);
        let late = t0 + Duration::from_millis(12);
        assert_eq!(
            b.plan_close(late, &close),
            Some((CloseTarget::Bucket(1), CloseReason::Aged))
        );
        // A deadline inside its slack outranks both.
        let mut b = Batcher::new(BatchPolicy {
            max_batch: 2,
            max_padded_tokens: usize::MAX,
            bucket_edges: vec![4],
        });
        b.push_at(0, vec![1; 2], t0, None);
        b.push_at(1, vec![1; 2], t0, None);
        b.push_at(2, vec![1; 8], t0, Some(late + Duration::from_millis(1)));
        assert_eq!(
            b.plan_close(late, &close),
            Some((CloseTarget::Bucket(1), CloseReason::Deadline))
        );
    }

    #[test]
    fn close_bucket_records_waits_and_upgrades_reason_to_full() {
        let mut b = Batcher::new(BatchPolicy {
            max_batch: 2,
            max_padded_tokens: usize::MAX,
            bucket_edges: Vec::new(),
        });
        let t0 = Instant::now();
        b.push_at(0, vec![1; 3], t0, None);
        b.push_at(1, vec![1; 5], t0, None);
        b.push_at(2, vec![1; 5], t0, None);
        let closed = b.close_bucket(0, t0 + Duration::from_millis(3), CloseReason::Aged);
        assert_eq!(closed.ids, vec![0, 1]);
        assert_eq!(closed.reason, CloseReason::Full, "cap-limited ⇒ Full");
        assert_eq!(closed.queue_waits, vec![Duration::from_millis(3); 2]);
        assert_eq!(closed.batch.max_len(), 5);
        // The remaining singleton is not budget-limited: fallback sticks.
        let closed = b.close_bucket(0, t0, CloseReason::Aged);
        assert_eq!(closed.ids, vec![2]);
        assert_eq!(closed.reason, CloseReason::Aged);
    }

    #[test]
    fn queued_tokens_tracks_push_close_and_expiry() {
        let mut b = Batcher::new(BatchPolicy::bucketed(vec![4]));
        assert_eq!(b.queued_tokens(), 0);
        let t0 = Instant::now();
        b.push_at(0, vec![1; 3], t0, None);
        b.push_at(1, vec![1; 8], t0, Some(t0 + Duration::from_millis(1)));
        b.push_at(2, vec![1; 2], t0, None);
        assert_eq!(b.queued_tokens(), 13);
        // Expiry releases the expired request's area…
        let expired = b.take_expired(t0 + Duration::from_millis(2));
        assert_eq!(expired.len(), 1);
        assert_eq!(b.queued_tokens(), 5);
        // …and packing releases the batch's.
        let (ids, _) = b.next_batch().unwrap();
        assert_eq!(ids, vec![0, 2]);
        assert_eq!(b.queued_tokens(), 0);
    }

    #[test]
    fn serve_policy_watermarks() {
        assert!(ServePolicy::unbounded().admits(1_000_000, usize::MAX));
        let depth = ServePolicy::with_max_queue_depth(2);
        assert!(depth.admits(2, 999));
        assert!(!depth.admits(3, 0));
        let area = ServePolicy::with_max_queued_tokens(100);
        assert!(area.admits(usize::MAX, 100));
        assert!(!area.admits(0, 101));
        assert_eq!(ServePolicy::default(), ServePolicy::unbounded());
    }

    #[test]
    fn decode_plane_closes_with_priority_over_aged() {
        let close = ClosePolicy {
            max_batch_age: Duration::from_millis(10),
            deadline_slack: Duration::from_millis(2),
        };
        let t0 = Instant::now();
        let mut b = Batcher::new(BatchPolicy::bucketed(vec![4]));
        // An aged prefill is waiting, but a decode step is too: decode
        // wins (token cadence outranks a filling prefill batch)…
        b.push_at(0, vec![1; 2], t0, None);
        b.push_decode(100, 7, t0 + Duration::from_millis(11), None);
        let now = t0 + Duration::from_millis(12);
        assert_eq!(
            b.plan_close(now, &close),
            Some((CloseTarget::Decode, CloseReason::Decode))
        );
        let closed = b.close_decode(now, CloseReason::Decode);
        assert_eq!(closed.ids, vec![100]);
        assert_eq!(closed.context_tokens, 8, "context 7 + the new row");
        assert_eq!(closed.reason, CloseReason::Decode);
        assert_eq!(b.decode_depth(), 0);
        // …after which the aged prefill close fires as usual.
        assert_eq!(
            b.plan_close(now, &close),
            Some((CloseTarget::Bucket(0), CloseReason::Aged))
        );
    }

    /// The ISSUE's starvation regression: a continuous stream of cheap
    /// decode steps must not starve a queued prefill forever. Once the
    /// prefill's wait crosses `max_prefill_wait`, it preempts the decode
    /// plane even though decode steps are still queued.
    #[test]
    fn continuous_decode_stream_cannot_starve_queued_prefills() {
        let close = ClosePolicy {
            max_batch_age: Duration::from_millis(10),
            deadline_slack: Duration::from_millis(2),
        };
        let t0 = Instant::now();
        let mut b = Batcher::new(BatchPolicy::bucketed(vec![4]));
        b.push_at(0, vec![1; 3], t0, None); // the prefill that must not starve
        let mut now = t0;
        let mut decode_closes = 0usize;
        // Simulate the worker loop: every time a decode batch closes, the
        // generating sequences immediately rejoin — the decode plane is
        // never empty.
        b.push_decode(100, 5, now, None);
        loop {
            now += Duration::from_millis(5);
            let (target, reason) = b.plan_close(now, &close).expect("work is queued");
            match target {
                CloseTarget::Decode => {
                    b.close_decode(now, reason);
                    decode_closes += 1;
                    assert!(decode_closes < 50, "prefill starved behind decode closes");
                    b.push_decode(100, 5, now, None); // continuous generation
                }
                CloseTarget::Bucket(bucket) => {
                    // The anti-starvation close: the prefill got through
                    // while decode steps were still queued.
                    assert_eq!(reason, CloseReason::Aged);
                    assert!(b.decode_depth() > 0, "decode pressure was continuous");
                    let closed = b.close_bucket(bucket, now, reason);
                    assert_eq!(closed.ids, vec![0]);
                    assert!(
                        now.saturating_duration_since(t0)
                            <= close.max_prefill_wait() + Duration::from_millis(5),
                        "prefill waited past the starvation bound"
                    );
                    break;
                }
            }
        }
    }

    #[test]
    fn decode_close_respects_count_and_area_budget() {
        let t0 = Instant::now();
        // Area budget 20: steps with context 8 cost 9 each → two fit.
        let mut b = Batcher::new(fifo_policy(16, 20));
        for id in 0..3 {
            b.push_decode(id, 8, t0, None);
        }
        let closed = b.close_decode(t0, CloseReason::Decode);
        assert_eq!(closed.ids, vec![0, 1]);
        assert_eq!(closed.context_tokens, 18);
        assert_eq!(closed.reason, CloseReason::Full, "budget-limited ⇒ Full");
        let closed = b.close_decode(t0, CloseReason::Decode);
        assert_eq!(closed.ids, vec![2]);
        assert_eq!(closed.reason, CloseReason::Decode);
        // Count budget binds too.
        let mut b = Batcher::new(fifo_policy(2, usize::MAX));
        for id in 0..5 {
            b.push_decode(id, 0, t0, None);
        }
        assert_eq!(b.close_decode(t0, CloseReason::Decode).ids, vec![0, 1]);
        assert_eq!(b.decode_depth(), 3);
    }

    #[test]
    fn decode_deadlines_shape_planning_and_expiry() {
        let close = ClosePolicy {
            max_batch_age: Duration::from_millis(10),
            deadline_slack: Duration::from_millis(2),
        };
        let t0 = Instant::now();
        let mut b = Batcher::new(BatchPolicy::bucketed(vec![4]));
        let deadline = t0 + Duration::from_millis(6);
        b.push_decode(100, 3, t0, Some(deadline));
        // The decode deadline is visible to the shared planning signals…
        assert_eq!(b.earliest_deadline(), Some(deadline));
        assert_eq!(
            b.plan_close(t0 + Duration::from_millis(4), &close),
            Some((CloseTarget::Decode, CloseReason::Deadline)),
            "a decode deadline inside slack closes with Deadline, not Decode"
        );
        // …and a lapsed deadline culls the step without running it.
        let expired = b.take_expired_decode(t0 + Duration::from_millis(7));
        assert_eq!(expired.len(), 1);
        assert_eq!(expired[0].id, 100);
        assert_eq!(b.decode_depth(), 0);
        assert!(b.is_empty());
        assert!(b
            .take_expired_decode(t0 + Duration::from_secs(1))
            .is_empty());
    }

    #[test]
    #[should_panic(expected = "empty request")]
    fn empty_request_panics() {
        Batcher::new(BatchPolicy::default_policy()).push(0, vec![]);
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn unsorted_bucket_edges_panic() {
        Batcher::new(BatchPolicy::bucketed(vec![16, 8]));
    }
}
