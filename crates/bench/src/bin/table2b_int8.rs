//! **T2B** — Table 2(b) reproduction: the INT8-body RoBERTa-like model.
//!
//! Rows: FP32-nonlinear baseline, I-BERT (INT32 integer kernels), and
//! NN-LUT at {FP32, FP32+C, INT32, INT32+C}, where "+C" is §3.3.3
//! calibration of the LayerNorm (1/√x) table on captured unlabeled
//! activations.
//!
//! Run: `cargo run --release -p nnlut-bench --bin table2b_int8`

use nnlut_bench::{fmt_header, fmt_row, mean, paper_kit};
use nnlut_core::calibrate::CalibrationConfig;
use nnlut_core::funcs::TargetFunction;
use nnlut_core::precision::Precision;
use nnlut_transformer::eval::{BenchConfig, TaskBench};
use nnlut_transformer::tasks::GlueTask;
use nnlut_transformer::{MatmulMode, Nonlinearity};

fn main() {
    println!("== Table 2(b): INT8 RoBERTa-like body (non-linear ops as labelled) ==\n");

    let cfg = BenchConfig {
        body_mode: MatmulMode::Int8,
        ..BenchConfig::default()
    };
    let benches: Vec<TaskBench> = GlueTask::ALL
        .iter()
        .map(|&t| {
            eprintln!("building frozen INT8 model for {t} …");
            TaskBench::new(t, &cfg)
        })
        .collect();

    // Direct kit plus a calibrated copy (LayerNorm 1/sqrt only, as in the
    // paper: "a calibration only for NN-LUT on the LayerNorm operations").
    let kit = paper_kit();
    let mut kit_cal = kit.clone();
    {
        // Unlabeled activation capture with the NN-LUT backend in place.
        let mut samples = Vec::new();
        for b in &benches {
            let cap = b.capture_layernorm(&Nonlinearity::all_lut(&kit), 2048, 16);
            samples.extend_from_slice(cap.samples());
        }
        eprintln!(
            "calibrating on {} captured LayerNorm variances …",
            samples.len()
        );
        kit_cal
            .calibrate(
                TargetFunction::Rsqrt,
                &samples,
                &CalibrationConfig::default(),
                nnlut_bench::KIT_SEED,
            )
            .expect("calibration with non-empty capture succeeds");
    }
    let kit_i32 = kit.with_precision(Precision::Int32).expect("int32 kit");
    let kit_i32_cal = kit_cal.with_precision(Precision::Int32).expect("int32 kit");

    let names: Vec<&str> = GlueTask::ALL.iter().map(|t| t.name()).collect();
    let mut header_names = names.clone();
    header_names.push("Avg");
    println!("{}", fmt_header("Method / Precision", &header_names));

    let emit = |label: &str, nl: &Nonlinearity| {
        let scores: Vec<f32> = benches.iter().map(|b| b.score(nl)).collect();
        let mut cells = scores.clone();
        cells.push(mean(&scores));
        println!("{}", fmt_row(label, &cells));
    };

    emit("Baseline (FP32 ops)", &Nonlinearity::exact());
    emit("I-BERT (INT32)", &Nonlinearity::all_ibert());
    emit("NN-LUT FP32", &Nonlinearity::all_lut(&kit));
    emit("NN-LUT FP32+C", &Nonlinearity::all_lut(&kit_cal));
    emit("NN-LUT INT32", &Nonlinearity::all_lut(&kit_i32));
    emit("NN-LUT INT32+C", &Nonlinearity::all_lut(&kit_i32_cal));

    println!("\nPaper shape to check: NN-LUT FP32 on par with I-BERT; INT32 slightly");
    println!("below FP32; calibration (+C) lifts both, surpassing I-BERT on average.");
}
