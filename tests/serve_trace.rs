//! Request-lifecycle tracing integration tests: the per-stage breakdown
//! accounts for the observed end-to-end latency, failovers land on the
//! same trace as the admission, incidents freeze the flight recorder,
//! and — the load-bearing property — tracing is *passive*: results with
//! the recorder on are bit-identical to results with it off.

use std::sync::Arc;
use std::time::{Duration, Instant};

use nn_lut::core::train::TrainConfig;
use nn_lut::core::NnLutKit;
use nn_lut::serve::{
    AsyncLutServer, AsyncServerConfig, FaultPlan, ReplicaHealth, ShardConfig, ShardedServer, Stage,
    TraceConfig,
};
use nn_lut::transformer::{BertModel, TransformerConfig};

fn tiny_async(config: AsyncServerConfig) -> AsyncLutServer {
    let model = BertModel::new_synthetic(TransformerConfig::roberta_tiny(), 9);
    let kit = NnLutKit::train_with(16, 9, &TrainConfig::fast());
    AsyncLutServer::new(model, kit, config)
}

fn tiny_sharded(config: ShardConfig) -> ShardedServer {
    let model = BertModel::new_synthetic(TransformerConfig::roberta_tiny(), 9);
    let kit = NnLutKit::train_with(16, 9, &TrainConfig::fast());
    ShardedServer::new(model, kit, config)
}

/// The acceptance property: per-stage durations sum to the trace's total
/// *exactly* (interval attribution is lossless by construction), and the
/// trace total matches the externally observed end-to-end latency within
/// clock slack (the trace is born inside `submit`, after our stopwatch
/// starts, and sealed before `wait` returns).
#[test]
fn stage_durations_sum_to_end_to_end_latency() {
    let server = tiny_async(AsyncServerConfig {
        trace: TraceConfig::enabled(),
        ..AsyncServerConfig::default()
    });
    let started = Instant::now();
    let ticket = server.submit(vec![1, 2, 3, 4]);
    let trace = ticket.trace_handle();
    ticket.wait().expect("no faults, no deadline");
    let observed = started.elapsed();

    let b = trace.breakdown();
    let stage_sum: Duration = Stage::ALL.iter().map(|&s| b.stage(s)).sum();
    assert_eq!(
        stage_sum,
        b.total(),
        "interval attribution must be lossless: {b}"
    );
    assert!(
        b.total() <= observed,
        "the trace lives strictly inside the observed window"
    );
    assert!(
        observed - b.total() < Duration::from_millis(250),
        "observed {observed:?} vs traced {:?}: submit/wait overhead should be tiny",
        b.total()
    );

    // The happy path walks the full pipeline, in order.
    let stages: Vec<Stage> = trace.events().iter().map(|e| e.stage).collect();
    assert_eq!(
        stages,
        vec![
            Stage::Admitted,
            Stage::Queued,
            Stage::Assembled,
            Stage::Dispatched,
            Stage::Encoded,
            Stage::Reordered,
            Stage::Resolved,
        ]
    );
    assert_eq!(trace.last_stage(), Some(Stage::Resolved));
    // Monotonic stage sketches made it into the metrics.
    let m = server.metrics();
    assert_eq!(m.stage_count(Stage::Resolved), 1);
}

/// One trace per shard request, across failovers: the injected panic
/// shows up as a `Requeued(panic)` event on the *same* trace that was
/// admitted, followed by a `Retried` on the surviving replica, and the
/// request still resolves with the shard's id.
#[test]
fn failover_rides_one_trace_with_cause_notes() {
    let mut config = ShardConfig {
        replicas: 2,
        // Replica 0 panics its first batch; replica 1 is clean.
        fault_plan: Some(Arc::new(FaultPlan::new().panic_at(0, 0))),
        retry_budget: 2,
        quarantine_after: 1,
        // Keep the quarantine observable: no probe fires mid-test.
        probe_backoff: Duration::from_secs(60),
        max_probe_backoff: Duration::from_secs(60),
        ..ShardConfig::default()
    };
    config.replica.trace = TraceConfig::enabled();
    let server = tiny_sharded(config);

    // Single request: deterministic JSQ routes it to replica 0 (empty
    // queues tie to the lowest index), where the panic fires.
    let ticket = server.submit(vec![1, 2, 3]);
    let id = ticket.id();
    let trace = ticket.trace_handle();
    let resp = ticket.wait().expect("one retry is inside the budget");
    assert_eq!(resp.id, id);

    let events = trace.events();
    let requeue = events
        .iter()
        .find(|e| e.stage == Stage::Requeued)
        .expect("the panicked attempt must journal a requeue");
    assert_eq!(requeue.note, Some("panic"));
    assert_eq!(requeue.replica, Some(0));
    let retried = events
        .iter()
        .find(|e| e.stage == Stage::Retried)
        .expect("the second attempt must journal a retry");
    assert_eq!(retried.replica, Some(1), "failover avoids the panicker");
    assert_eq!(events.last().map(|e| e.stage), Some(Stage::Resolved));

    // The quarantine transition froze an incident snapshot whose journal
    // contains the batch panic that caused it.
    let recorder = server.recorder().expect("tracing enabled");
    let incident = recorder
        .last_incident()
        .expect("quarantine_after=1 must trip an incident");
    assert!(
        incident.trigger == "quarantined" || incident.trigger == "batch-panic",
        "unexpected trigger {:?}",
        incident.trigger
    );
    assert!(
        incident.events.iter().any(|e| e.kind == "batch-panic"),
        "the snapshot must contain the panic that tripped it"
    );
    assert_eq!(
        server.status()[0].health,
        ReplicaHealth::Quarantined,
        "one strike quarantines under quarantine_after=1"
    );
}

/// Tracing is passive: the same workload served with the recorder on and
/// off produces bit-identical hidden states.
#[test]
fn tracing_is_bit_passive() {
    let run = |trace: TraceConfig| -> Vec<Vec<u8>> {
        let server = tiny_async(AsyncServerConfig {
            trace,
            ..AsyncServerConfig::default()
        });
        let tickets: Vec<_> = (1..=6)
            .map(|n| server.submit((0..n).map(|i| i * 3 % 64).collect()))
            .collect();
        tickets
            .into_iter()
            .map(|t| {
                let resp = t.wait().expect("no faults");
                resp.hidden
                    .as_slice()
                    .iter()
                    .flat_map(|v| v.to_bits().to_le_bytes())
                    .collect()
            })
            .collect()
    };
    assert_eq!(
        run(TraceConfig::enabled()),
        run(TraceConfig::disabled()),
        "the recorder must never influence results"
    );
}
