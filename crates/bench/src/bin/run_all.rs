//! Runs every table/figure reproduction binary in sequence (the full
//! paper regeneration). Equivalent to invoking each binary separately;
//! this is the one-command version referenced by the README.
//!
//! Run: `cargo run --release -p nnlut-bench --bin run_all`

use std::process::Command;

fn main() {
    let binaries = [
        "fig2_approx_accuracy",
        "table2a_glue_direct",
        "table2b_int8",
        "table3_mobilebert",
        "table4_hw",
        "table5_system",
        "ablation_entries",
        "ablation_loss",
        "ablation_breakpoints",
        "ablation_sampling",
        "ablation_calibration",
        "ext_decoder",
        "ext_softermax",
        "bench_lut_eval",
    ];
    let exe = std::env::current_exe().expect("current exe path");
    let dir = exe.parent().expect("binary directory");
    for bin in binaries {
        println!("\n================================================================");
        println!("== {bin}");
        println!("================================================================");
        let status = Command::new(dir.join(bin))
            .status()
            .unwrap_or_else(|e| panic!("failed to launch {bin}: {e}"));
        if !status.success() {
            eprintln!("{bin} exited with {status}");
            std::process::exit(1);
        }
    }
}
