//! Integer-only exponential (I-BERT Algorithm 2).
//!
//! For `x ≤ 0`, decompose `x = −z·ln2 + p` with `z ∈ ℕ`, `p ∈ (−ln2, 0]`,
//! then `exp(x) = 2^−z · exp(p)` where `exp(p)` is approximated by the
//! second-order polynomial `0.3585·(p + 1.353)² + 0.344`. The `2^−z` is a
//! right-shift — hence the shifter in the I-BERT datapath (paper Fig. 3b).

use crate::fixed::Quantized;
use crate::poly::i_poly;

/// The I-BERT exp-polynomial constants for `p ∈ (−ln2, 0]`.
pub const EXP_POLY: (f32, f32, f32) = (0.358_151_47, 1.353, 0.344);

/// Integer-only `exp(x)` for non-positive `x = v.q · v.scale`.
///
/// Inputs more negative than `−30·ln2` underflow to an exact zero (the
/// shift exceeds the accumulator width), matching I-BERT's behaviour.
///
/// # Panics
///
/// Panics if `v.scale` is not small enough to resolve `ln2` (the algorithm
/// needs `⌊ln2/S⌋ ≥ 1`).
pub fn i_exp(v: Quantized) -> Quantized {
    let q_ln2 = (std::f64::consts::LN_2 / v.scale as f64).floor() as i64;
    assert!(
        q_ln2 >= 1,
        "input scale {} too coarse to resolve ln2",
        v.scale
    );
    let q = v.q.min(0); // the kernel is defined on x ≤ 0
    let z = (-q) / q_ln2;
    let (a, b, c) = EXP_POLY;
    if z >= 31 {
        // exp underflows the shifted integer range.
        let p = Quantized {
            q: 0,
            scale: v.scale,
        };
        let l = i_poly(p, a, b, c);
        return Quantized {
            q: 0,
            scale: l.scale,
        };
    }
    let q_p = q + z * q_ln2; // p ∈ (−ln2, 0] on the same grid
    let l = i_poly(
        Quantized {
            q: q_p,
            scale: v.scale,
        },
        a,
        b,
        c,
    );
    Quantized {
        q: l.q >> z,
        scale: l.scale,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixed::scale_16bit;

    #[test]
    fn matches_exp_on_softmax_range() {
        let s = scale_16bit(256.0);
        for i in 0..=300 {
            let x = -i as f32 * 0.05; // 0 … −15
            let v = Quantized::quantize(x, s);
            let out = i_exp(v);
            let want = (x as f64).exp() as f32;
            assert!(
                (out.real() - want).abs() < 0.02,
                "x={x}: {} vs {want}",
                out.real()
            );
        }
    }

    #[test]
    fn relative_error_small_near_zero() {
        let s = 1e-4;
        for i in 0..=100 {
            let x = -i as f32 * 0.01;
            let out = i_exp(Quantized::quantize(x, s));
            let want = (x as f64).exp() as f32;
            let rel = (out.real() - want).abs() / want;
            assert!(rel < 0.02, "x={x}: rel err {rel}");
        }
    }

    #[test]
    fn deep_negative_underflows_to_zero() {
        let s = scale_16bit(256.0);
        let out = i_exp(Quantized::quantize(-200.0, s));
        assert_eq!(out.q, 0);
        assert_eq!(out.real(), 0.0);
    }

    #[test]
    fn positive_inputs_clamp_to_one() {
        let s = scale_16bit(256.0);
        let out = i_exp(Quantized::quantize(5.0, s));
        assert!((out.real() - 1.0).abs() < 0.05);
    }

    #[test]
    fn monotone_non_decreasing() {
        let s = scale_16bit(64.0);
        let mut prev = -1.0f32;
        for i in (0..=640).rev() {
            let x = -i as f32 * 0.1;
            let out = i_exp(Quantized::quantize(x, s)).real();
            assert!(out >= prev - 1e-6, "non-monotone at {x}");
            prev = out;
        }
    }

    #[test]
    #[should_panic(expected = "too coarse")]
    fn coarse_scale_panics() {
        let _ = i_exp(Quantized::quantize(-1.0, 10.0));
    }
}
