//! **AB-CAL** — calibration-budget ablation (extension).
//!
//! The paper uses "only one-tenth of the training dataset … without
//! labels" for §3.3.3 calibration. This ablation starts from the
//! paper-*literal* kit — Table-1 recipes with **uniform** input sampling,
//! whose `1/√x` knee is weakly trained (the configuration in which the
//! paper's own direct approximation loses accuracy) — and sweeps the
//! number of unlabeled examples whose captured LayerNorm variances feed
//! the calibration.
//!
//! Run: `cargo run --release -p nnlut-bench --bin ablation_calibration`

use nnlut_core::calibrate::CalibrationConfig;
use nnlut_core::funcs::TargetFunction;
use nnlut_core::train::{SamplingMode, TrainConfig};
use nnlut_core::NnLutKit;
use nnlut_transformer::eval::{BenchConfig, TaskBench};
use nnlut_transformer::tasks::GlueTask;
use nnlut_transformer::Nonlinearity;

fn main() {
    println!("== Ablation: calibration sample budget (LayerNorm 1/sqrt) ==");
    println!("   starting kit: paper-literal uniform sampling (weak knee)\n");
    eprintln!("building frozen model …");
    let bench = TaskBench::new(GlueTask::Mrpc, &BenchConfig::default());
    let base_kit = NnLutKit::train_with_sampling(
        16,
        nnlut_bench::KIT_SEED,
        &TrainConfig::paper(),
        SamplingMode::Uniform,
    );
    let direct = bench.score(&Nonlinearity::all_lut(&base_kit));

    // A held-out empirical variance set: the distribution the LayerNorms
    // actually produce (errors are scored *on this distribution* — what
    // the model experiences, not a uniform grid).
    let holdout = bench.capture_layernorm(&Nonlinearity::all_lut(&base_kit), 8192, 64);
    let empirical_err = |kit: &NnLutKit| {
        let mut acc = 0.0f64;
        for &v in holdout.samples() {
            let exact = 1.0 / v.sqrt();
            acc += ((kit.inv_sqrt(v) - exact).abs() / exact) as f64;
        }
        acc as f32 / holdout.len() as f32
    };

    println!(
        "{:>12} {:>20} {:>12}",
        "examples", "empirical rel. err", "task score"
    );
    println!(
        "{:>12} {:>20.6} {direct:>12.1}",
        "0 (direct)",
        empirical_err(&base_kit)
    );
    for examples in [2usize, 8, 32, 64] {
        let mut kit = base_kit.clone();
        let cap = bench.capture_layernorm(&Nonlinearity::all_lut(&kit), 8192, examples);
        kit.calibrate(
            TargetFunction::Rsqrt,
            cap.samples(),
            &CalibrationConfig::default(),
            11,
        )
        .expect("non-empty capture");
        let score = bench.score(&Nonlinearity::all_lut(&kit));
        println!("{examples:>12} {:>20.6} {score:>12.1}", empirical_err(&kit));
    }

    // For reference: the log-uniform kit needs no calibration.
    let tuned = NnLutKit::train_with(16, nnlut_bench::KIT_SEED, &TrainConfig::paper());
    println!(
        "{:>12} {:>20.6} {:>12.1}",
        "(log-unif)",
        empirical_err(&tuned),
        bench.score(&Nonlinearity::all_lut(&tuned))
    );

    println!("\nShape to check: a handful of unlabeled examples repairs the");
    println!("weakly-trained knee (error falls toward the log-uniform kit's),");
    println!("and the budget saturates quickly — calibration is cheap, as the");
    println!("paper claims (<5% of fine-tuning time).");
}
